//! Lowering-time kernel specialization.
//!
//! The operators that dominate a multigrid cycle — Jacobi relaxation,
//! residual, full-weighting restriction, bilinear/trilinear interpolation —
//! are constant-coefficient linear stencils of a handful of fixed shapes.
//! [`classify`] recognises those shapes on the lowered [`StageKernel`] and
//! tags the scheduled stage with a [`KernelImpl`]; the runtime then
//! dispatches the stage to a dedicated fully-unrolled row kernel (arity
//! known at compile time, vectorization-friendly) instead of the generic
//! tap loop. Anything unrecognised — non-linear cases, mixed up/down
//! sampling, wide shapes, high arity — keeps [`KernelImpl::Generic`] and
//! runs through the existing generic/interpreter paths.
//!
//! The specialized kernels accumulate taps in exactly the order the generic
//! loop does, so enabling specialization never changes results (bitwise).

use crate::plan::{KernelBody, StageKernel};
use gmg_ir::expr::AxisAccess;

/// Specialized row kernels above this arity would fall into the generic
/// path's coefficient-factored regime, which sums taps in a different
/// order; capping here keeps specialization bitwise-transparent.
pub const MAX_SPEC_TAPS: usize = 28;

/// The specialized kernel family of a scheduled stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum KernelImpl {
    /// Generic tap loop / expression interpreter (always correct).
    #[default]
    Generic,
    /// 2-D unit-stride stencil, cross shape (≤5 points: |dy|+|dx| ≤ 1).
    Stencil2D5,
    /// 2-D unit-stride stencil, box shape (≤9 points: |dy|,|dx| ≤ 1).
    Stencil2D9,
    /// 3-D unit-stride stencil, cross shape (≤7 points).
    Stencil3D7,
    /// 3-D unit-stride stencil, box shape (≤27 points).
    Stencil3D27,
    /// Stride-2 reading stencil (`in = 2·out + off`): full-weighting
    /// restriction.
    Restrict,
    /// Half-index reading stencil (`in = (out + off) / 2`): linear
    /// interpolation, executed per parity case.
    Interp,
}

/// The implementation tier a specialized stage executes at, selected at
/// lowering time *underneath* the [`KernelImpl`] family classification:
/// the family says *which* unrolled kernel shape fires, the tier says *how*
/// its inner loop is generated.
///
/// - [`Scalar`](KernelTier::Scalar): the PR-3 unrolled row kernels (and the
///   generic tap loop / interpreter — `Generic` stages are always scalar).
/// - [`LaneSafe`](KernelTier::LaneSafe): explicit-width f64-lane inner
///   loops with fixed-width array accumulators plus cache blocking of the
///   unit-stride dimension. Each output point still accumulates its taps in
///   exactly the generic order (lanes are *output points*, not taps), so
///   this tier is bitwise-identical to `Scalar` and is the default wherever
///   specialization fires.
/// - [`FastMath`](KernelTier::FastMath): the lane kernels with the per-point
///   tap chain reassociated into independent partial sums (and fused
///   multiply-add where the host supports it). Results differ from the
///   generic path at round-off level — gated behind
///   `PipelineOptions::fast_math` and verified by a ULP-bounded
///   differential suite instead of bitwise equality.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum KernelTier {
    /// Unrolled scalar row kernels (bitwise-identical to generic).
    #[default]
    Scalar,
    /// Explicit f64-lane kernels, generic accumulation order per point
    /// (bitwise-identical to generic).
    LaneSafe,
    /// Lane kernels with reassociated partial-sum accumulation (round-off
    /// level differences; ULP-verified).
    FastMath,
}

impl KernelTier {
    /// All tiers, indexable by [`KernelTier::index`].
    pub const ALL: [KernelTier; 3] = [
        KernelTier::Scalar,
        KernelTier::LaneSafe,
        KernelTier::FastMath,
    ];

    /// Dense index (trace histogram bucket).
    pub fn index(self) -> usize {
        match self {
            KernelTier::Scalar => 0,
            KernelTier::LaneSafe => 1,
            KernelTier::FastMath => 2,
        }
    }

    /// Short lowercase label (dumps, trace reports).
    pub fn label(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::LaneSafe => "lane_safe",
            KernelTier::FastMath => "fast_math",
        }
    }

    /// The tier a stage executes at, given its family classification and
    /// the `simd` / `fast_math` knobs: `Generic` stages and `simd = false`
    /// pipelines stay scalar; specialized stages run lane-safe by default
    /// and reassociating only when `fast_math` is set.
    pub fn select(impl_tag: KernelImpl, simd: bool, fast_math: bool) -> KernelTier {
        if impl_tag == KernelImpl::Generic || !simd {
            KernelTier::Scalar
        } else if fast_math {
            KernelTier::FastMath
        } else {
            KernelTier::LaneSafe
        }
    }
}

/// Full runtime kernel selection of one scheduled stage: the family, the
/// tier, and the unit-stride cache-block length (output points per block).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelSel {
    pub impl_tag: KernelImpl,
    pub tier: KernelTier,
    /// Cache-block length of the innermost (unit-stride) dimension for the
    /// lane tiers, derived from the pipeline's tile geometry at lowering
    /// ([`unit_block`]). Ignored by the scalar tier.
    pub xblock: usize,
}

impl KernelSel {
    /// The always-correct generic selection.
    pub fn generic() -> KernelSel {
        KernelSel::scalar(KernelImpl::Generic)
    }

    /// A scalar-tier selection of a family (the PR-3 dispatch).
    pub fn scalar(impl_tag: KernelImpl) -> KernelSel {
        KernelSel {
            impl_tag,
            tier: KernelTier::Scalar,
            xblock: 0,
        }
    }
}

/// Smallest unit-stride cache block the lane tiers will use. Blocks are
/// multiples of the widest lane count (8) so whole blocks vectorize without
/// a remainder loop. The floor is deliberately high: blocking only fires
/// when a row is *longer* than the block, and rows below ~1 K points fit
/// the streamed slab in L1/L2 anyway, so splitting them just pays the
/// per-block dispatch again (measured as a pure loss down to ≲128-point
/// blocks). 1024 points = one 8 KiB slab per input row.
pub const UNIT_BLOCK_MIN: usize = 1024;

/// Largest unit-stride cache block: 4096 points keeps a block's row slab at
/// 32 KiB — within L1 for a single row, within L2 for the ≲9 rows a 2-D box
/// stencil streams — while long enough to amortize loop overhead.
pub const UNIT_BLOCK_MAX: usize = 4096;

/// The unit-stride cache-block length for the lane tiers, derived from the
/// innermost tile extent the planner already chose (the paper's tile
/// geometry is cache-driven, so it is the right size signal): rounded up to
/// a multiple of 8 lanes and clamped to
/// [`UNIT_BLOCK_MIN`]..=[`UNIT_BLOCK_MAX`].
pub fn unit_block(inner_tile: i64) -> usize {
    let t = inner_tile.max(0) as usize;
    let rounded = t.div_ceil(8) * 8;
    rounded.clamp(UNIT_BLOCK_MIN, UNIT_BLOCK_MAX)
}

impl KernelImpl {
    /// All implementations, indexable by [`KernelImpl::index`].
    pub const ALL: [KernelImpl; 7] = [
        KernelImpl::Generic,
        KernelImpl::Stencil2D5,
        KernelImpl::Stencil2D9,
        KernelImpl::Stencil3D7,
        KernelImpl::Stencil3D27,
        KernelImpl::Restrict,
        KernelImpl::Interp,
    ];

    /// Dense index (trace histogram bucket).
    pub fn index(self) -> usize {
        match self {
            KernelImpl::Generic => 0,
            KernelImpl::Stencil2D5 => 1,
            KernelImpl::Stencil2D9 => 2,
            KernelImpl::Stencil3D7 => 3,
            KernelImpl::Stencil3D27 => 4,
            KernelImpl::Restrict => 5,
            KernelImpl::Interp => 6,
        }
    }

    /// Short lowercase label (dumps, trace reports).
    pub fn label(self) -> &'static str {
        match self {
            KernelImpl::Generic => "generic",
            KernelImpl::Stencil2D5 => "stencil2d5",
            KernelImpl::Stencil2D9 => "stencil2d9",
            KernelImpl::Stencil3D7 => "stencil3d7",
            KernelImpl::Stencil3D27 => "stencil3d27",
            KernelImpl::Restrict => "restrict",
            KernelImpl::Interp => "interp",
        }
    }
}

/// Per-axis sampling class of one access.
#[derive(Clone, Copy, PartialEq, Eq)]
enum AxisClass {
    /// `in = out + off` — plain stencil.
    Id,
    /// `in = 2·out + off` — restriction read.
    Down,
    /// `in = (out + off) / 2` — interpolation read.
    Up,
}

fn axis_class(a: &AxisAccess) -> Option<AxisClass> {
    match (a.num, a.den) {
        (1, 1) => Some(AxisClass::Id),
        (2, 1) => Some(AxisClass::Down),
        (1, 2) => Some(AxisClass::Up),
        _ => None,
    }
}

/// Classify a lowered kernel into its specialized family (decision table in
/// DESIGN §11). `ndims` is the rank of the stage's iteration domain.
pub fn classify(kernel: &StageKernel, ndims: usize) -> KernelImpl {
    let mut saw_down = false;
    let mut saw_up = false;
    // Widest |offset| over unit-stride axes; shape discrimination below.
    let mut cross = true; // Σ|off| ≤ 1 per access (5/7-point shapes)
    for case in &kernel.cases {
        let form = match &case.body {
            KernelBody::Linear(f) => f,
            KernelBody::Interpreted(_) => return KernelImpl::Generic,
        };
        if form.taps.len() > MAX_SPEC_TAPS {
            return KernelImpl::Generic;
        }
        for tap in &form.taps {
            // variable-coefficient taps only run on the generic tap loop:
            // no specialized family evaluates a run-time factor.
            if tap.cfactor.is_some() {
                return KernelImpl::Generic;
            }
            if tap.access.ndims() != ndims {
                return KernelImpl::Generic;
            }
            let mut abs_sum = 0i64;
            for axis in &tap.access.0 {
                match axis_class(axis) {
                    Some(AxisClass::Id) => {}
                    Some(AxisClass::Down) => saw_down = true,
                    Some(AxisClass::Up) => saw_up = true,
                    None => return KernelImpl::Generic,
                }
                if axis.off.abs() > 2 {
                    return KernelImpl::Generic;
                }
                abs_sum += axis.off.abs();
            }
            if abs_sum > 1 {
                cross = false;
            }
        }
    }
    match (saw_down, saw_up) {
        (true, true) => KernelImpl::Generic,
        (true, false) => KernelImpl::Restrict,
        (false, true) => KernelImpl::Interp,
        (false, false) => match (ndims, cross) {
            (2, true) => KernelImpl::Stencil2D5,
            (2, false) => KernelImpl::Stencil2D9,
            (3, true) => KernelImpl::Stencil3D7,
            (3, false) => KernelImpl::Stencil3D27,
            _ => KernelImpl::Generic,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::KernelCase;
    use gmg_ir::expr::{Access, Expr};
    use gmg_ir::linear::{LinearForm, Tap};
    use gmg_ir::ParityPattern;

    fn linear_kernel(taps: Vec<Tap>) -> StageKernel {
        StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(2),
                body: KernelBody::Linear(LinearForm { bias: 0.0, taps }),
            }],
        }
    }

    fn tap(offs: &[i64], coeff: f64) -> Tap {
        Tap {
            slot: 0,
            access: Access::offsets(offs),
            coeff,
            cfactor: None,
        }
    }

    #[test]
    fn five_point_cross_is_2d5() {
        let k = linear_kernel(vec![
            tap(&[0, 0], 4.0),
            tap(&[0, 1], -1.0),
            tap(&[0, -1], -1.0),
            tap(&[1, 0], -1.0),
            tap(&[-1, 0], -1.0),
        ]);
        assert_eq!(classify(&k, 2), KernelImpl::Stencil2D5);
    }

    #[test]
    fn diagonal_makes_2d9() {
        let k = linear_kernel(vec![tap(&[0, 0], 1.0), tap(&[1, 1], 0.5)]);
        assert_eq!(classify(&k, 2), KernelImpl::Stencil2D9);
    }

    #[test]
    fn rank3_shapes() {
        let cross = linear_kernel(vec![
            tap(&[0, 0, 0], 6.0),
            tap(&[1, 0, 0], -1.0),
            tap(&[0, 0, 1], -1.0),
        ]);
        assert_eq!(classify(&cross, 3), KernelImpl::Stencil3D7);
        let boxy = linear_kernel(vec![tap(&[0, 0, 0], 1.0), tap(&[1, 1, 1], 0.125)]);
        assert_eq!(classify(&boxy, 3), KernelImpl::Stencil3D27);
    }

    #[test]
    fn down_access_is_restrict_and_up_is_interp() {
        let down = linear_kernel(vec![Tap {
            slot: 0,
            access: Access(vec![AxisAccess::down(0), AxisAccess::down(1)]),
            coeff: 0.25,
            cfactor: None,
        }]);
        assert_eq!(classify(&down, 2), KernelImpl::Restrict);
        let up = linear_kernel(vec![Tap {
            slot: 0,
            access: Access(vec![AxisAccess::up(0), AxisAccess::up(1)]),
            coeff: 1.0,
            cfactor: None,
        }]);
        assert_eq!(classify(&up, 2), KernelImpl::Interp);
        let mixed = linear_kernel(vec![Tap {
            slot: 0,
            access: Access(vec![AxisAccess::down(0), AxisAccess::up(0)]),
            coeff: 1.0,
            cfactor: None,
        }]);
        assert_eq!(classify(&mixed, 2), KernelImpl::Generic);
    }

    #[test]
    fn generic_fallbacks() {
        // interpreted case
        let interp = StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(2),
                body: KernelBody::Interpreted(Expr::Const(0.0)),
            }],
        };
        assert_eq!(classify(&interp, 2), KernelImpl::Generic);
        // wide offset
        let wide = linear_kernel(vec![tap(&[0, 3], 1.0)]);
        assert_eq!(classify(&wide, 2), KernelImpl::Generic);
        // arity above the bitwise-safe cap
        let many = linear_kernel(
            (0..(MAX_SPEC_TAPS as i64 + 1))
                .map(|_| tap(&[0, 0], 1.0))
                .collect(),
        );
        assert_eq!(classify(&many, 2), KernelImpl::Generic);
        // unusual stride ratio
        let odd = linear_kernel(vec![Tap {
            slot: 0,
            access: Access(vec![
                AxisAccess {
                    num: 3,
                    den: 1,
                    off: 0,
                },
                AxisAccess::offset(0),
            ]),
            coeff: 1.0,
            cfactor: None,
        }]);
        assert_eq!(classify(&odd, 2), KernelImpl::Generic);
        // rank 1 has no specialized family
        let r1 = linear_kernel(vec![tap(&[0], 1.0)]);
        assert_eq!(classify(&r1, 1), KernelImpl::Generic);
    }

    #[test]
    fn coeff_factor_tap_refuses_specialization() {
        use gmg_ir::linear::CoeffRead;
        // an otherwise-perfect 5-point cross, but one tap carries a
        // run-time coefficient factor: must stay Generic so no future
        // kernel family silently misclassifies variable-coefficient stages
        let mut taps = vec![
            tap(&[0, 0], 4.0),
            tap(&[0, 1], -1.0),
            tap(&[0, -1], -1.0),
            tap(&[1, 0], -1.0),
            tap(&[-1, 0], -1.0),
        ];
        taps[1].cfactor = Some(CoeffRead {
            slot: 1,
            access: Access::offsets(&[0, 0]),
        });
        let k = linear_kernel(taps);
        assert_eq!(classify(&k, 2), KernelImpl::Generic);
    }

    #[test]
    fn impl_index_is_dense() {
        for (i, k) in KernelImpl::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        assert_eq!(KernelImpl::default(), KernelImpl::Generic);
    }
}
