//! Kernel lowering: stage definitions → executable kernel descriptions.
//!
//! Each parity case of a stage is linearised (see [`gmg_ir::linear`]) into a
//! flat tap list. Taps reading [`gmg_ir::StageInput::Zero`] slots are folded
//! away here (their value is identically the zero boundary), which is what
//! lets the recursive error cycles start from an implicit zero guess with no
//! storage and no wasted arithmetic. Cases that do not linearise are kept as
//! expressions for the runtime's reference interpreter.

use crate::plan::{KernelBody, KernelCase, StageKernel};
use gmg_ir::{linearize_with_coeffs, Stage, StageGraph, StageInput, StageKind};

/// Lower every compute stage of the graph. Entry `i` is `None` for inputs.
///
/// With `coeff_factoring`, taps are sorted by coefficient so the runtime
/// can sum equal-weight taps before multiplying (the automatic form of the
/// partial-sum loop bodies NPB MG hand-writes; §7 of DESIGN.md).
pub fn lower_all(graph: &StageGraph, coeff_factoring: bool) -> Vec<Option<StageKernel>> {
    graph
        .stages
        .iter()
        .map(|s| match s.kind {
            StageKind::Input => None,
            StageKind::Compute => Some(lower_stage(s, coeff_factoring)),
        })
        .collect()
}

/// Lower one stage.
pub fn lower_stage(stage: &Stage, coeff_factoring: bool) -> StageKernel {
    let cases = stage
        .cases
        .iter()
        .map(|(pat, expr)| {
            let body = match linearize_with_coeffs(expr, &stage.coeff_slots) {
                Some(mut form) => {
                    // fold away taps whose slot is the implicit zero grid;
                    // a zero coefficient factor likewise zeroes the tap
                    form.taps.retain(|t| {
                        matches!(stage.inputs[t.slot], StageInput::Stage(_))
                            && t.cfactor.as_ref().is_none_or(|c| {
                                matches!(stage.inputs[c.slot], StageInput::Stage(_))
                            })
                    });
                    if coeff_factoring {
                        // stable sort keeps same-coefficient taps in
                        // deterministic (access) order
                        form.taps.sort_by(|a, b| a.coeff.total_cmp(&b.coeff));
                    }
                    KernelBody::Linear(form)
                }
                None => KernelBody::Interpreted(expr.clone()),
            };
            KernelCase {
                pattern: pat.clone(),
                body,
            }
        })
        .collect();
    StageKernel { cases }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::KernelBody;
    use gmg_ir::expr::Operand;
    use gmg_ir::stencil::stencil_2d;
    use gmg_ir::{ParamBindings, Pipeline, StepCount};

    fn five() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.0],
            vec![0.0, -1.0, 0.0],
        ]
    }

    #[test]
    fn jacobi_lowers_to_linear() {
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, 15, 1);
        let f = p.input("F", 2, 15, 1);
        let sm = p.tstencil(
            "sm",
            2,
            15,
            1,
            StepCount::Fixed(1),
            Some(v),
            Operand::State.at(&[0, 0])
                - 0.8 * (stencil_2d(Operand::State, &five(), 1.0) - Operand::Func(f).at(&[0, 0])),
        );
        p.mark_output(sm);
        let g = gmg_ir::StageGraph::build(&p, &ParamBindings::new());
        let kernels = lower_all(&g, true);
        assert!(kernels[0].is_none() && kernels[1].is_none());
        let k = kernels[2].as_ref().unwrap();
        assert_eq!(k.cases.len(), 1);
        match &k.cases[0].body {
            KernelBody::Linear(form) => {
                assert_eq!(form.taps.len(), 6); // 5-pt + f
                assert_eq!(form.bias, 0.0);
            }
            _ => panic!("expected linear kernel"),
        }
    }

    #[test]
    fn zero_state_taps_folded() {
        let mut p = Pipeline::new("t");
        let f = p.input("F", 2, 15, 1);
        // step 0 of a zero-state smoother: state taps vanish, only the f tap
        // remains.
        let sm = p.tstencil(
            "sm",
            2,
            15,
            1,
            StepCount::Fixed(1),
            None,
            Operand::State.at(&[0, 0])
                - 0.8 * (stencil_2d(Operand::State, &five(), 1.0) - Operand::Func(f).at(&[0, 0])),
        );
        p.mark_output(sm);
        let g = gmg_ir::StageGraph::build(&p, &ParamBindings::new());
        let kernels = lower_all(&g, true);
        let k = kernels[1].as_ref().unwrap();
        match &k.cases[0].body {
            KernelBody::Linear(form) => {
                assert_eq!(form.taps.len(), 1, "only the f tap should survive");
                assert!((form.taps[0].coeff - 0.8).abs() < 1e-12);
            }
            _ => panic!("expected linear kernel"),
        }
    }

    #[test]
    fn nonlinear_falls_back_to_interpreter() {
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, 7, 0);
        let sq = p.function(
            "sq",
            2,
            7,
            0,
            Operand::Func(v).at(&[0, 0]) * Operand::Func(v).at(&[0, 0]),
        );
        p.mark_output(sq);
        let g = gmg_ir::StageGraph::build(&p, &ParamBindings::new());
        let kernels = lower_all(&g, true);
        let k = kernels[1].as_ref().unwrap();
        assert!(matches!(k.cases[0].body, KernelBody::Interpreted(_)));
    }

    #[test]
    fn interp_lowers_per_case() {
        let mut p = Pipeline::new("t");
        let c = p.input("C", 2, 7, 0);
        let e = p.interp_fn("e", 2, 15, 1, c);
        p.mark_output(e);
        let g = gmg_ir::StageGraph::build(&p, &ParamBindings::new());
        let kernels = lower_all(&g, true);
        let k = kernels[1].as_ref().unwrap();
        assert_eq!(k.cases.len(), 4);
        for case in &k.cases {
            match &case.body {
                KernelBody::Linear(form) => {
                    assert!((form.coeff_sum() - 1.0).abs() < 1e-12);
                }
                _ => panic!("interp cases must be linear"),
            }
        }
    }
}
