//! Seeded evolutionary search over the extended tuning space.
//!
//! The §3.2.4 sweep evaluates every tile/group combination — 80 points in
//! 2-D, 135 in 3-D — and each evaluation is a real multigrid solve, so the
//! sweep is exactly what a serving fleet cannot afford. This module
//! replaces it with a small memetic (μ+λ)-style evolutionary search in the
//! spirit of Schmitt et al. 2019: tournament selection, one-point crossover
//! and per-field neighbor mutation over a genome of axis *indices*, plus an
//! elitist coordinate line-scan of the incumbent best (one axis per
//! generation) that guarantees the lattice optimum on separable metric
//! surfaces — all under a hard evaluation budget of ≤ 25% of the
//! corresponding sweep.
//!
//! Determinism contract: every decision the search makes — seeding,
//! parent selection, crossover points, mutations, dedup order — is driven
//! by a [splitmix64] stream from [`SearchParams::seed`] and by the order of
//! reported metrics. No wall clock, no global RNG. Same seed + same metric
//! sequence ⇒ identical candidate trajectory, which is what makes the
//! server's online tuner and this crate's proptests reproducible.
//!
//! The genome covers the paper's two axes plus two new ones:
//! `smooth_band` (the diamond-tile time-band height — schedule-only, like
//! tiles and grouping) and the kernel tier. The fast-math tier reassociates
//! and therefore changes results bitwise, so it only enters the space when
//! the caller sets [`SearchParams::allow_fast_math`] — the server does that
//! only for sessions that already opted in.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use std::collections::{BTreeSet, VecDeque};

use super::{TuneConfig, TuneError, TuneSample, GROUP_LIMITS};
use crate::specialize::KernelTier;

/// Smoother time-band heights explored by the search (the "smoother steps"
/// scheduling axis; maps onto `PipelineOptions::dtile_band`).
pub const SMOOTH_BANDS: [usize; 4] = [1, 2, 4, 8];

/// splitmix64 — tiny, seedable, and good enough for search decisions.
#[derive(Clone, Debug)]
struct Rng {
    state: u64,
}

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n ≥ 1).
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `pct`%.
    fn chance(&mut self, pct: u32) -> bool {
        (self.next_u64() % 100) < u64::from(pct)
    }
}

/// One ordered axis of the search lattice.
#[derive(Clone, Debug)]
enum Axis {
    Tile(Vec<i64>),
    Group(Vec<usize>),
    Band(Vec<usize>),
    Tier(Vec<KernelTier>),
}

impl Axis {
    fn len(&self) -> usize {
        match self {
            Axis::Tile(v) => v.len(),
            Axis::Group(v) => v.len(),
            Axis::Band(v) => v.len(),
            Axis::Tier(v) => v.len(),
        }
    }
}

fn axes_for(ndims: usize, allow_fast_math: bool) -> Result<Vec<Axis>, TuneError> {
    let mut axes: Vec<Axis> = match ndims {
        2 => vec![
            Axis::Tile(vec![8, 16, 32, 64]),
            Axis::Tile(vec![64, 128, 256, 512]),
        ],
        3 => vec![
            Axis::Tile(vec![8, 16, 32]),
            Axis::Tile(vec![8, 16, 32]),
            Axis::Tile(vec![64, 128, 256]),
        ],
        other => return Err(TuneError::UnsupportedRank(other)),
    };
    axes.push(Axis::Group(GROUP_LIMITS.to_vec()));
    axes.push(Axis::Band(SMOOTH_BANDS.to_vec()));
    let mut tiers = vec![KernelTier::Scalar, KernelTier::LaneSafe];
    if allow_fast_math {
        tiers.push(KernelTier::FastMath);
    }
    axes.push(Axis::Tier(tiers));
    Ok(axes)
}

/// Knobs of the evolutionary search. [`SearchParams::for_rank`] gives the
/// defaults used everywhere in-tree; they are tuned so the budget stays at
/// 25% of the §3.2.4 sweep for the same rank.
#[derive(Clone, Debug)]
pub struct SearchParams {
    /// Seed of the decision stream. Two searches with the same seed over
    /// the same metric emit identical candidate sequences.
    pub seed: u64,
    /// Generation size (gen-0 is seeded with the default configuration and
    /// the two lattice corners before random fill).
    pub population: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-axis mutation probability in percent.
    pub mutation_pct: u32,
    /// Hard evaluation budget; [`EvoSearch::next_candidate`] returns `None`
    /// once it is spent.
    pub max_evals: usize,
    /// Whether the fast-math kernel tier is part of the space. Keep this
    /// off unless the consumer already opted into fast-math numerics.
    pub allow_fast_math: bool,
}

impl SearchParams {
    /// Defaults for a rank: budget = 25% of the corresponding sweep
    /// (80 → 20 evaluations in 2-D, 135 → 33 in 3-D).
    pub fn for_rank(ndims: usize) -> Result<SearchParams, TuneError> {
        let max_evals = match ndims {
            2 => 20,
            3 => 33,
            other => return Err(TuneError::UnsupportedRank(other)),
        };
        Ok(SearchParams {
            seed: 0x5eed_0001,
            population: 6,
            tournament: 3,
            mutation_pct: 40,
            max_evals,
            allow_fast_math: false,
        })
    }

    pub fn with_seed(mut self, seed: u64) -> SearchParams {
        self.seed = seed;
        self
    }

    pub fn with_budget(mut self, max_evals: usize) -> SearchParams {
        self.max_evals = max_evals;
        self
    }

    pub fn with_fast_math(mut self, allow: bool) -> SearchParams {
        self.allow_fast_math = allow;
        self
    }
}

/// Result of a completed [`search`] run.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The best configuration found and its metric.
    pub best: TuneSample,
    /// Configurations actually evaluated.
    pub evals: usize,
    /// Every evaluation in order (the "candidate trajectory" the
    /// determinism proptests compare).
    pub trajectory: Vec<TuneSample>,
}

/// Stepwise ask/tell evolutionary search. The server's online tuner drives
/// this one trial at a time between requests; [`search`] wraps it into a
/// synchronous loop for offline use.
#[derive(Clone, Debug)]
pub struct EvoSearch {
    params: SearchParams,
    axes: Vec<Axis>,
    rng: Rng,
    /// Candidates proposed but not yet reported/discarded.
    pending: VecDeque<Vec<usize>>,
    /// Every genome ever proposed (dedup set; discarded genomes stay here
    /// so a faulted configuration is not proposed twice).
    seen: BTreeSet<Vec<usize>>,
    /// Reported `(genome, metric)` pairs, in report order.
    evaluated: Vec<(Vec<usize>, f64)>,
    /// Next axis of the memetic line-scan pass (== `axes.len()` once the
    /// pass is complete and GA breeding has taken over).
    scan_axis: usize,
    space: usize,
}

impl EvoSearch {
    pub fn new(ndims: usize, params: SearchParams) -> Result<EvoSearch, TuneError> {
        let axes = axes_for(ndims, params.allow_fast_math)?;
        let space = axes.iter().map(Axis::len).product();
        let mut s = EvoSearch {
            rng: Rng::new(params.seed),
            params,
            axes,
            pending: VecDeque::new(),
            seen: BTreeSet::new(),
            evaluated: Vec::new(),
            scan_axis: 0,
            space,
        };
        s.seed_generation_zero();
        Ok(s)
    }

    /// Gen-0: the deployed default configuration first (so the search's
    /// baseline is always measured), then the two lattice corners, then
    /// random fill — all deduplicated.
    fn seed_generation_zero(&mut self) {
        let default_genome = self.encode(&TuneConfig::new(
            crate::options::default_tiles(self.ndims()),
            6, // PipelineOptions default group_limit
        ));
        let lo = vec![0usize; self.axes.len()];
        let hi: Vec<usize> = self.axes.iter().map(|a| a.len() - 1).collect();
        for g in [default_genome, lo, hi] {
            self.propose(g);
        }
        let mut guard = 0;
        while self.pending.len() < self.params.population && guard < 1000 {
            let g = self.random_genome();
            self.propose(g);
            guard += 1;
        }
    }

    fn ndims(&self) -> usize {
        self.axes
            .iter()
            .filter(|a| matches!(a, Axis::Tile(_)))
            .count()
    }

    fn random_genome(&mut self) -> Vec<usize> {
        let mut g = Vec::with_capacity(self.axes.len());
        for i in 0..self.axes.len() {
            let n = self.axes[i].len();
            g.push(self.rng.below(n));
        }
        g
    }

    fn propose(&mut self, genome: Vec<usize>) -> bool {
        if self.seen.insert(genome.clone()) {
            self.pending.push_back(genome);
            true
        } else {
            false
        }
    }

    fn decode(&self, genome: &[usize]) -> TuneConfig {
        let mut tiles = Vec::new();
        let mut group = 6;
        let mut band = 4;
        let mut tier = KernelTier::LaneSafe;
        for (axis, &idx) in self.axes.iter().zip(genome) {
            match axis {
                Axis::Tile(v) => tiles.push(v[idx]),
                Axis::Group(v) => group = v[idx],
                Axis::Band(v) => band = v[idx],
                Axis::Tier(v) => tier = v[idx],
            }
        }
        TuneConfig {
            tile_sizes: tiles,
            group_limit: group,
            smooth_band: band,
            tier,
        }
    }

    /// Inverse of [`decode`](EvoSearch::decode). Panics if the config is
    /// not on the lattice — callers must only hand back configs this search
    /// emitted.
    fn encode(&self, cfg: &TuneConfig) -> Vec<usize> {
        let mut genome = Vec::with_capacity(self.axes.len());
        let mut t = 0usize;
        for axis in &self.axes {
            let idx = match axis {
                Axis::Tile(v) => {
                    let i = v
                        .iter()
                        .position(|&x| x == cfg.tile_sizes[t])
                        .expect("tile size off the search lattice");
                    t += 1;
                    i
                }
                Axis::Group(v) => v
                    .iter()
                    .position(|&x| x == cfg.group_limit)
                    .expect("group limit off the search lattice"),
                Axis::Band(v) => v
                    .iter()
                    .position(|&x| x == cfg.smooth_band)
                    .expect("smooth band off the search lattice"),
                Axis::Tier(v) => v
                    .iter()
                    .position(|&x| x == cfg.tier)
                    .expect("kernel tier off the search lattice"),
            };
            genome.push(idx);
        }
        genome
    }

    /// Next configuration to measure, or `None` when the evaluation budget
    /// or the whole lattice is exhausted.
    pub fn next_candidate(&mut self) -> Option<TuneConfig> {
        if self.evaluated.len() >= self.params.max_evals {
            return None;
        }
        if self.pending.is_empty() {
            self.breed();
        }
        let genome = self.pending.pop_front()?;
        Some(self.decode(&genome))
    }

    /// Breed the next generation from everything evaluated so far.
    fn breed(&mut self) {
        if self.seen.len() >= self.space {
            return; // lattice exhausted
        }
        if self.evaluated.is_empty() {
            // nothing reported yet (everything discarded?) — refill randomly
            let mut guard = 0;
            while self.pending.is_empty() && guard < 1000 {
                let g = self.random_genome();
                self.propose(g);
                guard += 1;
            }
            return;
        }
        // Memetic line-scan pass before GA breeding: coordinate descent over
        // the incumbent best, one full axis per generation (the incumbent is
        // re-read between lines, so improvements recenter the scan). On a
        // separable metric surface one pass reaches the lattice optimum in
        // at most Σ(axis length − 1) evaluations past gen-0 — which is what
        // keeps the default budget (25% of the §3.2.4 sweep) sufficient to
        // match the full sweep. The GA below then spends any remaining
        // budget on cross-axis interactions the scan cannot see.
        while self.scan_axis < self.axes.len() {
            let incumbent = self
                .evaluated
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap()
                .0
                .clone();
            let axis = self.scan_axis;
            self.scan_axis += 1;
            let mut any = false;
            for idx in 0..self.axes[axis].len() {
                let mut g = incumbent.clone();
                g[axis] = idx;
                any |= self.propose(g);
            }
            if any {
                return;
            }
        }
        let want = self.params.population.min(self.space - self.seen.len());
        let mut attempts = 0;
        while self.pending.len() < want && attempts < 200 {
            attempts += 1;
            let a = self.tournament();
            let b = self.tournament();
            let mut child = self.crossover(&a, &b);
            self.mutate(&mut child);
            self.propose(child);
        }
        // rng-driven breeding may stall near exhaustion: deterministically
        // scan the lattice for any unseen genome so the budget is usable
        if self.pending.is_empty() {
            let mut cursor = vec![0usize; self.axes.len()];
            loop {
                if !self.seen.contains(&cursor) {
                    self.propose(cursor.clone());
                    break;
                }
                // odometer increment; done when it wraps
                let mut i = 0;
                loop {
                    if i == self.axes.len() {
                        return;
                    }
                    cursor[i] += 1;
                    if cursor[i] < self.axes[i].len() {
                        break;
                    }
                    cursor[i] = 0;
                    i += 1;
                }
            }
        }
    }

    /// Tournament selection: best (lowest metric) of `k` random evaluated
    /// genomes.
    fn tournament(&mut self) -> Vec<usize> {
        let k = self.params.tournament.max(1);
        let mut best: Option<usize> = None;
        for _ in 0..k {
            let i = self.rng.below(self.evaluated.len());
            best = Some(match best {
                None => i,
                Some(j) if self.evaluated[i].1 < self.evaluated[j].1 => i,
                Some(j) => j,
            });
        }
        self.evaluated[best.unwrap()].0.clone()
    }

    /// One-point crossover.
    fn crossover(&mut self, a: &[usize], b: &[usize]) -> Vec<usize> {
        let cut = 1 + self.rng.below(a.len() - 1);
        let mut child = a[..cut].to_vec();
        child.extend_from_slice(&b[cut..]);
        child
    }

    /// Per-field neighbor mutation: each axis independently steps ±1 along
    /// its ordered domain with probability `mutation_pct`%, clamped by
    /// reflecting at the ends.
    fn mutate(&mut self, genome: &mut [usize]) {
        for (i, g) in genome.iter_mut().enumerate() {
            if !self.rng.chance(self.params.mutation_pct) {
                continue;
            }
            let n = self.axes[i].len();
            if n == 1 {
                continue;
            }
            let up = self.rng.chance(50);
            *g = if up {
                if *g + 1 < n {
                    *g + 1
                } else {
                    *g - 1
                }
            } else if *g > 0 {
                *g - 1
            } else {
                *g + 1
            };
        }
    }

    /// Report the measured metric for a candidate from
    /// [`next_candidate`](EvoSearch::next_candidate) (lower is better).
    pub fn report(&mut self, cfg: &TuneConfig, metric: f64) {
        let genome = self.encode(cfg);
        self.evaluated.push((genome, metric));
    }

    /// Drop a candidate without a metric (e.g. its trial faulted). The
    /// configuration stays in the dedup set and is not proposed again.
    pub fn discard(&mut self, _cfg: &TuneConfig) {
        // nothing to do: the genome was already removed from `pending` and
        // remains in `seen`; the method exists to make call sites explicit
    }

    /// Put a candidate back at the front of the queue (e.g. to retry a
    /// trial that failed for reasons unrelated to the configuration).
    pub fn requeue(&mut self, cfg: &TuneConfig) {
        let genome = self.encode(cfg);
        self.pending.push_front(genome);
    }

    /// Number of metrics reported so far.
    pub fn evals(&self) -> usize {
        self.evaluated.len()
    }

    /// Whether the search will emit no further candidates.
    pub fn finished(&mut self) -> bool {
        if self.evaluated.len() >= self.params.max_evals {
            return true;
        }
        if !self.pending.is_empty() {
            return false;
        }
        self.breed();
        self.pending.is_empty()
    }

    /// Best evaluated configuration so far.
    pub fn best(&self) -> Option<TuneSample> {
        self.evaluated
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(g, m)| TuneSample {
                config: self.decode(g),
                metric: *m,
            })
    }
}

/// Run the search to completion against a synchronous evaluator.
pub fn search(
    ndims: usize,
    params: &SearchParams,
    mut eval: impl FnMut(&TuneConfig) -> f64,
) -> Result<SearchOutcome, TuneError> {
    let mut s = EvoSearch::new(ndims, params.clone())?;
    let mut trajectory = Vec::new();
    while let Some(cfg) = s.next_candidate() {
        let metric = eval(&cfg);
        s.report(&cfg, metric);
        trajectory.push(TuneSample {
            config: cfg,
            metric,
        });
    }
    let best = s.best().ok_or(TuneError::EmptySpace)?;
    Ok(SearchOutcome {
        best,
        evals: trajectory.len(),
        trajectory,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn surface(cfg: &TuneConfig) -> f64 {
        // separable convex bowl centered off the default configuration
        let mut m = 0.0;
        m += ((cfg.tile_sizes[0] - 16).abs() as f64) / 8.0;
        m += ((cfg.tile_sizes[cfg.tile_sizes.len() - 1] - 128).abs() as f64) / 64.0;
        m += (cfg.group_limit as f64 - 8.0).abs();
        m += (cfg.smooth_band as f64 - 2.0).abs();
        m += match cfg.tier {
            KernelTier::LaneSafe => 0.0,
            _ => 1.0,
        };
        m
    }

    #[test]
    fn rejects_unsupported_rank() {
        let p = SearchParams::for_rank(2).unwrap();
        assert!(matches!(
            EvoSearch::new(5, p),
            Err(TuneError::UnsupportedRank(5))
        ));
        assert!(matches!(
            SearchParams::for_rank(1),
            Err(TuneError::UnsupportedRank(1))
        ));
    }

    #[test]
    fn budget_is_respected_and_best_is_min_of_trajectory() {
        for ndims in [2usize, 3] {
            let params = SearchParams::for_rank(ndims).unwrap();
            let out = search(ndims, &params, surface).unwrap();
            assert!(out.evals <= params.max_evals);
            assert_eq!(out.evals, out.trajectory.len());
            let min = out
                .trajectory
                .iter()
                .map(|s| s.metric)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(out.best.metric, min);
        }
    }

    #[test]
    fn first_candidate_is_the_deployed_default() {
        let mut s = EvoSearch::new(2, SearchParams::for_rank(2).unwrap()).unwrap();
        let first = s.next_candidate().unwrap();
        assert_eq!(first, TuneConfig::new(vec![32, 512], 6));
        let mut s3 = EvoSearch::new(3, SearchParams::for_rank(3).unwrap()).unwrap();
        assert_eq!(
            s3.next_candidate().unwrap(),
            TuneConfig::new(vec![16, 16, 128], 6)
        );
    }

    #[test]
    fn fast_math_only_explored_when_allowed() {
        let params = SearchParams::for_rank(2).unwrap().with_budget(80);
        let out = search(2, &params, surface).unwrap();
        assert!(out
            .trajectory
            .iter()
            .all(|s| s.config.tier != KernelTier::FastMath));

        let fm = params.clone().with_fast_math(true);
        let out = search(2, &fm, |c| surface(c) * 0.5).unwrap();
        // with the tier axis open and a generous budget the tier must
        // actually be explored
        assert!(out
            .trajectory
            .iter()
            .any(|s| s.config.tier == KernelTier::FastMath));
    }

    #[test]
    fn exhausts_small_lattices_without_duplicates() {
        // generous budget over the full 2-D extended lattice:
        // 4·4·5·4·2 = 640 points, budget 1000 ⇒ must visit each point at
        // most once and stop at 640
        let params = SearchParams::for_rank(2).unwrap().with_budget(1000);
        let out = search(2, &params, surface).unwrap();
        assert_eq!(out.evals, 640);
        let mut seen = std::collections::BTreeSet::new();
        for s in &out.trajectory {
            assert!(seen.insert(format!("{:?}", s.config)), "duplicate candidate");
        }
        // exhaustive visit ⇒ the true optimum was found
        assert_eq!(out.best.metric, 0.0);
    }

    #[test]
    fn requeue_and_discard_drive_retry_flow() {
        let mut s = EvoSearch::new(2, SearchParams::for_rank(2).unwrap()).unwrap();
        let c1 = s.next_candidate().unwrap();
        s.requeue(&c1);
        let again = s.next_candidate().unwrap();
        assert_eq!(c1, again, "requeued candidate comes back first");
        s.discard(&again);
        let c2 = s.next_candidate().unwrap();
        assert_ne!(c1, c2, "discarded candidate is not re-proposed");
        assert_eq!(s.evals(), 0, "neither discard nor requeue counts as an eval");
    }
}
