//! PolyMage's greedy auto-grouping (§3.1), reused unchanged for multigrid —
//! "no changes were needed to the fusion and tiling transformations already
//! employed in PolyMage".
//!
//! Starting from singleton groups, producer groups are repeatedly merged
//! into consumer groups when (a) the merged size stays within the grouping
//! limit, (b) the merge is *convex* (no dependence path leaves and re-enters
//! the merged set — merging would otherwise create a cyclic group schedule),
//! and (c) the redundant-computation ratio of overlap-tiling the merged
//! group at the configured tile sizes stays below the overlap threshold.
//!
//! When diamond tiling of smoothers is requested (`polymg-dtile-opt+`),
//! `TStencil` step chains are kept as their own groups: steps of one
//! smoother may merge with each other but not with neighbouring operators,
//! so the chain can be time-tiled by the split/diamond executor.

use crate::options::{PipelineOptions, TilingMode};
use gmg_ir::{FuncKind, Pipeline, StageGraph, StageId, StageInput, StageKind};
use gmg_poly::region::{GroupEdge, GroupStage};
use gmg_poly::tiling::evaluate_tiling;
use gmg_poly::{BoxDomain, Ratio};

/// A partition of the compute stages into fused groups, in a valid
/// (topological) execution order.
#[derive(Clone, Debug)]
pub struct Grouping {
    /// Groups in execution order; stages within a group in schedule order.
    pub groups: Vec<Vec<StageId>>,
}

impl Grouping {
    /// Group index of each stage (`None` for inputs).
    pub fn group_of(&self, num_stages: usize) -> Vec<Option<usize>> {
        let mut out = vec![None; num_stages];
        for (gi, g) in self.groups.iter().enumerate() {
            for s in g {
                out[s.0] = Some(gi);
            }
        }
        out
    }

    /// Size of the largest group.
    pub fn max_group_size(&self) -> usize {
        self.groups.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Per-dimension scale of `stage` relative to `reference`, derived from the
/// vertex-centred interior sizes (`(n_s + 1) / (n_ref + 1)` reduces to the
/// exact power-of-two level ratio).
pub fn stage_scales(stage_dom: &BoxDomain, ref_dom: &BoxDomain) -> Vec<Ratio> {
    stage_dom
        .0
        .iter()
        .zip(&ref_dom.0)
        .map(|(s, r)| Ratio::new(s.len() + 1, r.len() + 1))
        .collect()
}

/// Result of [`group_geometry`]: (stages, edges, reference stage's local
/// index, per-stage domain scales, per-stage live-out flags).
pub type GroupGeometry = (
    Vec<GroupStage>,
    Vec<GroupEdge>,
    usize,
    Vec<Vec<Ratio>>,
    Vec<bool>,
);

/// Build the group-local region-propagation inputs for a set of stages.
pub fn group_geometry(
    graph: &StageGraph,
    members: &[StageId],
    outside_consumers: &[Vec<StageId>],
) -> GroupGeometry {
    let local_of = |sid: StageId| members.iter().position(|m| *m == sid);
    let live = live_stages(graph);
    // reference = stage with the largest domain
    let ref_local = members
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| graph.stage(**s).domain.len())
        .map(|(i, _)| i)
        .expect("empty group");
    let ref_dom = &graph.stage(members[ref_local]).domain;

    let mut gstages = Vec::with_capacity(members.len());
    let mut scales = Vec::with_capacity(members.len());
    let mut live_out = Vec::with_capacity(members.len());
    for sid in members {
        let st = graph.stage(*sid);
        gstages.push(GroupStage {
            domain: st.domain.clone(),
            owned: BoxDomain::empty(st.domain.ndims()),
        });
        scales.push(stage_scales(&st.domain, ref_dom));
        let escapes = st.is_output
            || outside_consumers[sid.0]
                .iter()
                .any(|c| live[c.0] && local_of(*c).is_none());
        live_out.push(escapes);
    }

    let mut edges = Vec::new();
    for (ci, sid) in members.iter().enumerate() {
        let st = graph.stage(*sid);
        for (slot, inp) in st.inputs.iter().enumerate() {
            if let StageInput::Stage(p) = inp {
                if let Some(pi) = local_of(*p) {
                    edges.push(GroupEdge {
                        producer: pi,
                        consumer: ci,
                        footprint: st.footprints[slot].clone(),
                    });
                }
            }
        }
    }
    (gstages, edges, ref_local, scales, live_out)
}

/// Stages reachable (backwards) from a pipeline output — dead stages (e.g.
/// the level-1 defect/restrict of a 10-0-0 cycle, whose coarse solve
/// provably contributes nothing) are pruned from execution, one of the
/// whole-program optimizations the DSL enables.
pub fn live_stages(graph: &StageGraph) -> Vec<bool> {
    let n = graph.stages.len();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = graph
        .stages
        .iter()
        .enumerate()
        .filter(|(_, s)| s.is_output)
        .map(|(i, _)| i)
        .collect();
    for &s in &stack {
        live[s] = true;
    }
    while let Some(s) = stack.pop() {
        for inp in &graph.stages[s].inputs {
            let StageInput::Stage(p) = inp else { continue };
            if !live[p.0] {
                live[p.0] = true;
                stack.push(p.0);
            }
        }
    }
    live
}

/// Run the greedy auto-grouping (over live compute stages only).
pub fn auto_group(pipeline: &Pipeline, graph: &StageGraph, opts: &PipelineOptions) -> Grouping {
    let n = graph.stages.len();
    let consumers = graph.consumers();
    let live = live_stages(graph);

    // initial singleton groups over live compute stages
    let mut group_of: Vec<Option<usize>> = vec![None; n];
    let mut members: Vec<Vec<StageId>> = Vec::new();
    for (i, s) in graph.stages.iter().enumerate() {
        if s.kind == StageKind::Compute && live[i] {
            group_of[i] = Some(members.len());
            members.push(vec![StageId(i)]);
        }
    }

    let fusing = opts.tiling == TilingMode::Overlapped && opts.group_limit > 1;
    if fusing {
        greedy_merge(
            pipeline,
            graph,
            opts,
            &consumers,
            &mut group_of,
            &mut members,
        );
    }

    order_groups(graph, &members, &group_of)
}

fn greedy_merge(
    pipeline: &Pipeline,
    graph: &StageGraph,
    opts: &PipelineOptions,
    consumers: &[Vec<StageId>],
    group_of: &mut [Option<usize>],
    members: &mut [Vec<StageId>],
) {
    let tstencil_only =
        |sid: StageId| pipeline.func(graph.stage(sid).func).kind == FuncKind::TStencil;

    loop {
        let mut merged_any = false;
        // candidate edges between distinct groups
        'outer: for p in 0..graph.stages.len() {
            let Some(gp) = group_of[p] else { continue };
            for c in &consumers[p] {
                let Some(gc) = group_of[c.0] else { continue };
                if gp == gc {
                    continue;
                }
                // size limit
                if members[gp].len() + members[gc].len() > opts.group_limit {
                    continue;
                }
                // dtile / mixed precision: a TStencil chain may not merge
                // with other functions (the chain executors need the whole
                // group to be steps of one smoother)
                if opts.dtile_smoother || opts.mixed_precision {
                    let fp = graph.stage(StageId(p)).func;
                    let fc = graph.stage(*c).func;
                    if (tstencil_only(StageId(p)) || tstencil_only(*c)) && fp != fc {
                        continue;
                    }
                }
                // convexity: every group reachable from gp that reaches gc
                // must be inside {gp, gc}
                if !is_convex_merge(graph, group_of, gp, gc) {
                    continue;
                }
                // overlap threshold on the merged group
                let mut merged: Vec<StageId> = members[gp]
                    .iter()
                    .chain(members[gc].iter())
                    .copied()
                    .collect();
                merged.sort();
                if !overlap_ok(graph, opts, &merged, consumers) {
                    continue;
                }
                // commit the merge into gc
                let moving = std::mem::take(&mut members[gp]);
                for s in &moving {
                    group_of[s.0] = Some(gc);
                }
                members[gc].extend(moving);
                members[gc].sort();
                merged_any = true;
                break 'outer;
            }
        }
        if !merged_any {
            break;
        }
    }
}

/// Would merging groups `ga` and `gb` stay convex? True iff no dependence
/// path from `ga` to `gb` passes through a third group.
fn is_convex_merge(graph: &StageGraph, group_of: &[Option<usize>], ga: usize, gb: usize) -> bool {
    // find stages reachable from ga-stages that can reach gb-stages while
    // outside both groups
    let n = graph.stages.len();
    let consumers = graph.consumers();
    // forward reachability from ga (through any stage)
    let mut from_a = vec![false; n];
    let mut stack: Vec<usize> = (0..n).filter(|i| group_of[*i] == Some(ga)).collect();
    while let Some(s) = stack.pop() {
        for c in &consumers[s] {
            if !from_a[c.0] {
                from_a[c.0] = true;
                stack.push(c.0);
            }
        }
    }
    // backward reachability from gb
    let mut to_b = vec![false; n];
    let mut stack: Vec<usize> = (0..n).filter(|i| group_of[*i] == Some(gb)).collect();
    while let Some(s) = stack.pop() {
        for inp in &graph.stages[s].inputs {
            let StageInput::Stage(st) = inp else { continue };
            if !to_b[st.0] {
                to_b[st.0] = true;
                stack.push(st.0);
            }
        }
    }
    // any stage on a path strictly between, belonging to a third group?
    (0..n).all(|s| {
        !(from_a[s] && to_b[s])
            || group_of[s].is_none()
            || group_of[s] == Some(ga)
            || group_of[s] == Some(gb)
    })
}

/// Does overlap-tiling the merged member set stay under the threshold?
fn overlap_ok(
    graph: &StageGraph,
    opts: &PipelineOptions,
    merged: &[StageId],
    _consumers: &[Vec<StageId>],
) -> bool {
    let ndims = graph.stage(merged[0]).domain.ndims();
    // ranks must agree within a group
    if merged
        .iter()
        .any(|s| graph.stage(*s).domain.ndims() != ndims)
    {
        return false;
    }
    let outside = graph.consumers();
    let (gstages, edges, ref_local, scales, live_out) = group_geometry(graph, merged, &outside);
    let stats = evaluate_tiling(
        &gstages,
        &edges,
        ref_local,
        &scales,
        &live_out,
        &opts.tiles_for_rank(ndims),
    );
    stats.work_ratio() <= opts.overlap_threshold
}

/// Order groups topologically (Kahn over the group DAG); stages within each
/// group are already id-sorted, which is a valid intra-group schedule.
fn order_groups(
    graph: &StageGraph,
    members: &[Vec<StageId>],
    group_of: &[Option<usize>],
) -> Grouping {
    let live: Vec<usize> = (0..members.len())
        .filter(|g| !members[*g].is_empty())
        .collect();
    let mut indeg = vec![0usize; members.len()];
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); members.len()];
    for (p, c, _) in graph.edges() {
        let (Some(gp), Some(gc)) = (group_of[p.0], group_of[c.0]) else {
            continue;
        };
        if gp != gc {
            succ[gp].push(gc);
        }
    }
    for s in succ.iter_mut() {
        s.sort();
        s.dedup();
    }
    for g in &live {
        for c in &succ[*g] {
            indeg[*c] += 1;
        }
    }
    // Kahn, preferring lower min-stage-id for a deterministic, source-like order
    let mut ready: Vec<usize> = live.iter().copied().filter(|g| indeg[*g] == 0).collect();
    let mut out = Vec::with_capacity(live.len());
    while !ready.is_empty() {
        ready.sort_by_key(|g| members[*g].first().map(|s| s.0).unwrap_or(usize::MAX));
        let g = ready.remove(0);
        out.push(members[g].clone());
        for c in &succ[g] {
            indeg[*c] -= 1;
            if indeg[*c] == 0 {
                ready.push(*c);
            }
        }
    }
    assert_eq!(out.len(), live.len(), "group DAG has a cycle");
    Grouping { groups: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{PipelineOptions, Variant};
    use gmg_ir::expr::Operand;
    use gmg_ir::stencil::{restrict_full_weighting_2d, stencil_2d};
    use gmg_ir::{ParamBindings, Pipeline, StepCount};

    fn five() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.0],
            vec![0.0, -1.0, 0.0],
        ]
    }

    fn smoother_pipeline(steps: usize) -> (Pipeline, gmg_ir::StageGraph) {
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, 255, 1);
        let f = p.input("F", 2, 255, 1);
        let sm = p.tstencil(
            "sm",
            2,
            255,
            1,
            StepCount::Fixed(steps),
            Some(v),
            Operand::State.at(&[0, 0])
                - 0.8 * (stencil_2d(Operand::State, &five(), 1.0) - Operand::Func(f).at(&[0, 0])),
        );
        p.mark_output(sm);
        let g = gmg_ir::StageGraph::build(&p, &ParamBindings::new());
        (p, g)
    }

    #[test]
    fn naive_keeps_singletons() {
        let (p, g) = smoother_pipeline(4);
        let opts = PipelineOptions::for_variant(Variant::Naive, 2);
        let grouping = auto_group(&p, &g, &opts);
        assert_eq!(grouping.groups.len(), 4);
        assert_eq!(grouping.max_group_size(), 1);
    }

    #[test]
    fn smoother_chain_fuses() {
        let (p, g) = smoother_pipeline(4);
        let mut opts = PipelineOptions::for_variant(Variant::Opt, 2);
        opts.tile_sizes = vec![32, 64];
        let grouping = auto_group(&p, &g, &opts);
        assert_eq!(grouping.groups.len(), 1, "4 steps fit the limit of 6");
        assert_eq!(grouping.groups[0].len(), 4);
        // schedule order within group
        let ids: Vec<usize> = grouping.groups[0].iter().map(|s| s.0).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn group_limit_respected() {
        let (p, g) = smoother_pipeline(10);
        let mut opts = PipelineOptions::for_variant(Variant::Opt, 2);
        opts.group_limit = 4;
        opts.tile_sizes = vec![32, 64];
        let grouping = auto_group(&p, &g, &opts);
        assert!(grouping.max_group_size() <= 4);
        assert!(grouping.groups.len() >= 3);
        // union of groups covers all 10 steps exactly once
        let total: usize = grouping.groups.iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn overlap_threshold_blocks_merges() {
        let (p, g) = smoother_pipeline(6);
        let mut opts = PipelineOptions::for_variant(Variant::Opt, 2);
        // tiny tiles → huge redundancy → merging blocked
        opts.tile_sizes = vec![4, 4];
        opts.overlap_threshold = 1.1;
        let grouping = auto_group(&p, &g, &opts);
        assert_eq!(grouping.max_group_size(), 1);
    }

    #[test]
    fn restrict_fuses_across_levels() {
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, 255, 1);
        let d = p.function(
            "defect",
            2,
            255,
            1,
            stencil_2d(Operand::Func(v), &five(), 1.0),
        );
        let r = p.restrict_fn("r", 2, 127, 0, restrict_full_weighting_2d(Operand::Func(d)));
        p.mark_output(r);
        let g = gmg_ir::StageGraph::build(&p, &ParamBindings::new());
        let mut opts = PipelineOptions::for_variant(Variant::Opt, 2);
        opts.tile_sizes = vec![32, 64];
        let grouping = auto_group(&p, &g, &opts);
        assert_eq!(
            grouping.groups.len(),
            1,
            "defect+restrict should fuse (residual-restriction fusion)"
        );
    }

    #[test]
    fn dtile_keeps_smoother_separate() {
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, 255, 1);
        let f = p.input("F", 2, 255, 1);
        let sm = p.tstencil(
            "sm",
            2,
            255,
            1,
            StepCount::Fixed(4),
            Some(v),
            Operand::State.at(&[0, 0])
                - 0.8 * (stencil_2d(Operand::State, &five(), 1.0) - Operand::Func(f).at(&[0, 0])),
        );
        let d = p.function(
            "defect",
            2,
            255,
            1,
            stencil_2d(Operand::Func(sm), &five(), 1.0) - Operand::Func(f).at(&[0, 0]),
        );
        p.mark_output(d);
        let g = gmg_ir::StageGraph::build(&p, &ParamBindings::new());
        let mut opts = PipelineOptions::for_variant(Variant::DtileOptPlus, 2);
        opts.tile_sizes = vec![32, 64];
        let grouping = auto_group(&p, &g, &opts);
        // smoother chain together, defect separate
        assert_eq!(grouping.groups.len(), 2);
        assert_eq!(grouping.groups[0].len(), 4);
        assert_eq!(grouping.groups[1].len(), 1);
    }

    #[test]
    fn scales_derive_from_sizes() {
        let fine = BoxDomain::interior(2, 255);
        let coarse = BoxDomain::interior(2, 127);
        let s = stage_scales(&coarse, &fine);
        assert_eq!(s[0], Ratio::new(1, 2));
        let same = stage_scales(&fine, &fine);
        assert!(same[0].is_one());
    }
}
