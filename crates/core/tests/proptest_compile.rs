//! Property tests over the compiler: random smoother/restrict/interp
//! pipelines must always compile into well-formed plans for every variant.

use gmg_ir::expr::Operand;
use gmg_ir::stencil::{interp_bilinear_cases, restrict_full_weighting_2d, stencil_2d};
use gmg_ir::{FuncId, ParamBindings, Pipeline, StepCount};
use polymg::{compile, GroupTiling, PipelineOptions, Variant};
use proptest::prelude::*;

fn five() -> Vec<Vec<f64>> {
    vec![
        vec![0.0, -1.0, 0.0],
        vec![-1.0, 4.0, -1.0],
        vec![0.0, -1.0, 0.0],
    ]
}

/// A randomised but well-formed 2-level pipeline.
fn random_pipeline(pre: usize, post: usize, with_coarse: bool) -> Pipeline {
    let n = 31i64;
    let nc = 15i64;
    let mut p = Pipeline::new("prop");
    let v = p.input("V", 2, n, 1);
    let f = p.input("F", 2, n, 1);
    let jac = |st: Operand, fo: FuncId| {
        st.at(&[0, 0]) - 0.2 * (stencil_2d(st, &five(), 1.0) - Operand::Func(fo).at(&[0, 0]))
    };
    let pre_s = if pre > 0 {
        p.tstencil(
            "pre",
            2,
            n,
            1,
            StepCount::Fixed(pre),
            Some(v),
            jac(Operand::State, f),
        )
    } else {
        v
    };
    let d = p.function(
        "defect",
        2,
        n,
        1,
        Operand::Func(f).at(&[0, 0]) - stencil_2d(Operand::Func(pre_s), &five(), 1.0),
    );
    let r = p.restrict_fn(
        "restrict",
        2,
        nc,
        0,
        restrict_full_weighting_2d(Operand::Func(d)),
    );
    let coarse = if with_coarse {
        p.tstencil(
            "coarse",
            2,
            nc,
            0,
            StepCount::Fixed(2),
            None,
            jac(Operand::State, r),
        )
    } else {
        r
    };
    let cases = interp_bilinear_cases(Operand::Func(coarse));
    let e = p.interp_fn_cases("interp", 2, n, 1, cases);
    let c = p.function(
        "correct",
        2,
        n,
        1,
        Operand::Func(pre_s).at(&[0, 0]) + Operand::Func(e).at(&[0, 0]),
    );
    let out = if post > 0 {
        p.tstencil(
            "post",
            2,
            n,
            1,
            StepCount::Fixed(post),
            Some(c),
            jac(Operand::State, f),
        )
    } else {
        c
    };
    p.mark_output(out);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn plans_are_well_formed(
        pre in 0usize..5,
        post in 0usize..5,
        with_coarse in proptest::bool::ANY,
        ty in 1usize..3,
        tx in 1usize..4,
        gl in 1usize..9,
        variant in 0usize..4,
    ) {
        let variant = Variant::all()[variant];
        let p = random_pipeline(pre, post, with_coarse);
        let mut opts = PipelineOptions::for_variant(variant, 2);
        opts.tile_sizes = vec![8 << ty, 16 << tx];
        opts.group_limit = gl;
        let plan = compile(&p, &ParamBindings::new(), opts).unwrap();

        // 1. every group respects the limit (or is a singleton)
        for g in &plan.groups {
            prop_assert!(g.stages.len() <= gl.max(1));
        }
        // 2. group order is topological: every out-of-group producer of a
        //    stage lives in an earlier group
        let mut group_of = vec![usize::MAX; plan.graph.stages.len()];
        for (gi, g) in plan.groups.iter().enumerate() {
            for s in &g.stages {
                group_of[s.0] = gi;
            }
        }
        for (gi, g) in plan.groups.iter().enumerate() {
            for s in &g.stages {
                for inp in &plan.graph.stage(*s).inputs {
                    if let gmg_ir::StageInput::Stage(pr) = inp {
                        if group_of[pr.0] != usize::MAX && group_of[pr.0] != gi {
                            prop_assert!(group_of[pr.0] < gi, "group order violated");
                        }
                    }
                }
            }
        }
        // 3. scratch slots index into the group's buffer table
        for g in &plan.groups {
            for slot in g.scratch_slot.iter().flatten() {
                prop_assert!(*slot < g.scratch_buffers.len());
            }
            if matches!(g.tiling, GroupTiling::Untiled) {
                prop_assert_eq!(g.stages.len(), 1);
            }
        }
        // 4. every referenced array id is in range, externals bound to
        //    inputs/outputs only
        for a in plan.storage.array_of_stage.iter().flatten() {
            prop_assert!(*a < plan.storage.arrays.len());
        }
    }

    /// Variant monotonicity of storage, for arbitrary pipelines.
    #[test]
    fn opt_plus_storage_never_larger(
        pre in 1usize..5,
        post in 0usize..5,
        with_coarse in proptest::bool::ANY,
    ) {
        let p = random_pipeline(pre, post, with_coarse);
        let bytes = |v: Variant| {
            let mut o = PipelineOptions::for_variant(v, 2);
            o.tile_sizes = vec![8, 16];
            compile(&p, &ParamBindings::new(), o)
                .unwrap()
                .storage
                .intermediate_bytes()
        };
        prop_assert!(bytes(Variant::OptPlus) <= bytes(Variant::Opt));
        prop_assert!(bytes(Variant::Opt) <= bytes(Variant::Naive));
    }
}
