//! Property tests over the evolutionary autotuning search (§3.2.4 online
//! variant): seeded determinism of the candidate trajectory, validity of
//! every emitted configuration against the extended parameter bounds, and
//! convergence — the search must match or beat the full-sweep optimum on a
//! deterministic synthetic cost surface while spending at most 25% of the
//! sweep's evaluations.

use gmg_ir::expr::Operand;
use gmg_ir::stencil::{interp_bilinear_cases, restrict_full_weighting_2d, stencil_2d};
use gmg_ir::{FuncId, ParamBindings, Pipeline, StepCount};
use polymg::autotune::search::{search, SearchParams, SMOOTH_BANDS};
use polymg::autotune::{search_space, GROUP_LIMITS};
use polymg::{KernelTier, PipelineOptions, TuneConfig, Variant};
use proptest::prelude::*;

/// Deterministic synthetic cost: a separable convex bowl over the lattice.
/// It depends only on the axes the §3.2.4 sweep also explores (tiles and
/// grouping limit), so the sweep optimum is a lower bound the search must
/// reach; the extra online axes (band, tier) are cost-neutral at their
/// respective optima and penalised elsewhere, so the surface is still
/// strictly separable in every axis.
fn bowl(cfg: &TuneConfig) -> f64 {
    let nd = cfg.tile_sizes.len();
    let mut m = 0.0;
    // inner tile axes want 16, the unit-stride axis wants 256
    for &t in &cfg.tile_sizes[..nd - 1] {
        m += ((t as f64).log2() - 4.0).abs();
    }
    m += ((cfg.tile_sizes[nd - 1] as f64).log2() - 8.0).abs();
    m += (cfg.group_limit as f64 - 8.0).abs() / 2.0;
    m += ((cfg.smooth_band as f64).log2() - 1.0).abs() / 4.0;
    m += match cfg.tier {
        KernelTier::LaneSafe => 0.0,
        _ => 0.125,
    };
    m
}

fn in_bounds(cfg: &TuneConfig, ndims: usize, allow_fast_math: bool) {
    let tile_axes: Vec<Vec<i64>> = match ndims {
        2 => vec![vec![8, 16, 32, 64], vec![64, 128, 256, 512]],
        _ => vec![vec![8, 16, 32], vec![8, 16, 32], vec![64, 128, 256]],
    };
    assert_eq!(cfg.tile_sizes.len(), ndims, "tile rank mismatch: {cfg:?}");
    for (axis, &t) in tile_axes.iter().zip(&cfg.tile_sizes) {
        assert!(axis.contains(&t), "tile {t} outside §3.2.4 axis {axis:?}");
    }
    assert!(
        GROUP_LIMITS.contains(&cfg.group_limit),
        "group limit {} outside bounds",
        cfg.group_limit
    );
    assert!(
        SMOOTH_BANDS.contains(&cfg.smooth_band),
        "smoother band {} outside bounds",
        cfg.smooth_band
    );
    if !allow_fast_math {
        assert_ne!(
            cfg.tier,
            KernelTier::FastMath,
            "fast-math tier emitted without opt-in"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed ⇒ bit-identical candidate trajectory. The decision stream
    /// is a pure function of the seed and the reported metrics; nothing in
    /// the search consults a clock or an unseeded RNG.
    #[test]
    fn same_seed_same_trajectory(
        seed in 0u64..=u64::MAX,
        ndims in 2usize..4,
        fast_math in proptest::bool::ANY,
    ) {
        let params = SearchParams::for_rank(ndims)
            .unwrap()
            .with_seed(seed)
            .with_fast_math(fast_math);
        let a = search(ndims, &params, bowl).unwrap();
        let b = search(ndims, &params, bowl).unwrap();
        prop_assert_eq!(a.evals, b.evals);
        prop_assert_eq!(a.trajectory.len(), b.trajectory.len());
        for (x, y) in a.trajectory.iter().zip(&b.trajectory) {
            prop_assert_eq!(&x.config, &y.config, "trajectories diverged");
            prop_assert_eq!(x.metric.to_bits(), y.metric.to_bits());
        }
        prop_assert_eq!(a.best.config, b.best.config);
    }

    /// Every emitted candidate stays inside the extended §3.2.4 bounds,
    /// never duplicates, and never exceeds the evaluation budget.
    #[test]
    fn emitted_candidates_stay_in_bounds(
        seed in 0u64..=u64::MAX,
        ndims in 2usize..4,
        fast_math in proptest::bool::ANY,
    ) {
        let params = SearchParams::for_rank(ndims)
            .unwrap()
            .with_seed(seed)
            .with_fast_math(fast_math);
        let out = search(ndims, &params, bowl).unwrap();
        prop_assert!(out.evals <= params.max_evals);
        let mut seen = std::collections::BTreeSet::new();
        for s in &out.trajectory {
            in_bounds(&s.config, ndims, fast_math);
            prop_assert!(
                seen.insert(format!("{:?}", s.config)),
                "duplicate candidate {:?}",
                s.config
            );
        }
    }
}

/// A small but structurally complete 2-level V-cycle pipeline (same shape
/// as `proptest_compile.rs` uses) for compiling emitted candidates.
fn vcycle_pipeline() -> Pipeline {
    let five = vec![
        vec![0.0, -1.0, 0.0],
        vec![-1.0, 4.0, -1.0],
        vec![0.0, -1.0, 0.0],
    ];
    let n = 31i64;
    let nc = 15i64;
    let mut p = Pipeline::new("search_prop");
    let v = p.input("V", 2, n, 1);
    let f = p.input("F", 2, n, 1);
    let jac = |st: Operand, fo: FuncId| {
        st.at(&[0, 0]) - 0.2 * (stencil_2d(st, &five, 1.0) - Operand::Func(fo).at(&[0, 0]))
    };
    let pre = p.tstencil(
        "pre",
        2,
        n,
        1,
        StepCount::Fixed(2),
        Some(v),
        jac(Operand::State, f),
    );
    let d = p.function(
        "defect",
        2,
        n,
        1,
        Operand::Func(f).at(&[0, 0]) - stencil_2d(Operand::Func(pre), &five, 1.0),
    );
    let r = p.restrict_fn(
        "restrict",
        2,
        nc,
        0,
        restrict_full_weighting_2d(Operand::Func(d)),
    );
    let coarse = p.tstencil(
        "coarse",
        2,
        nc,
        0,
        StepCount::Fixed(2),
        None,
        jac(Operand::State, r),
    );
    let e = p.interp_fn_cases("interp", 2, n, 1, interp_bilinear_cases(Operand::Func(coarse)));
    let c = p.function(
        "correct",
        2,
        n,
        1,
        Operand::Func(pre).at(&[0, 0]) + Operand::Func(e).at(&[0, 0]),
    );
    let post = p.tstencil(
        "post",
        2,
        n,
        1,
        StepCount::Fixed(2),
        Some(c),
        jac(Operand::State, f),
    );
    p.mark_output(post);
    p
}

/// Every configuration one search run emits round-trips through
/// [`TuneConfig::apply`] into a `PipelineOptions` the compiler accepts —
/// the knobs are real, not merely well-typed.
#[test]
fn emitted_candidates_apply_into_compilable_options() {
    let pipeline = vcycle_pipeline();
    let params = SearchParams::for_rank(2).unwrap().with_seed(0xA11D);
    let out = search(2, &params, bowl).unwrap();
    assert!(out.evals > 0);
    for s in &out.trajectory {
        let opts = s.config.apply(&PipelineOptions::for_variant(Variant::OptPlus, 2));
        assert_eq!(opts.tile_sizes, s.config.tile_sizes);
        assert_eq!(opts.group_limit, s.config.group_limit);
        assert_eq!(opts.dtile_band, s.config.smooth_band);
        let plan = polymg::compile(&pipeline, &ParamBindings::new(), opts)
            .unwrap_or_else(|e| panic!("candidate {:?} failed to compile: {e:?}", s.config));
        assert!(!plan.groups.is_empty());
    }
}

/// On the deterministic bowl the search must find a configuration at least
/// as good as the best of the *full* §3.2.4 sweep, while evaluating at most
/// 25% as many candidates — the headline claim of the online tuner.
#[test]
fn search_matches_sweep_optimum_with_quarter_budget() {
    for ndims in [2usize, 3] {
        let space = search_space(ndims).expect("sweep space");
        let sweep_best = space
            .iter()
            .map(bowl)
            .min_by(f64::total_cmp)
            .unwrap();
        let sweep_evals = space.len();

        let params = SearchParams::for_rank(ndims).unwrap();
        assert!(
            params.max_evals * 4 <= sweep_evals,
            "{ndims}-D default budget {} exceeds 25% of the {sweep_evals}-point sweep",
            params.max_evals
        );
        let out = search(ndims, &params, bowl).unwrap();
        assert!(
            out.best.metric <= sweep_best,
            "{ndims}-D search best {} worse than sweep best {sweep_best} \
             after {} evals",
            out.best.metric,
            out.evals
        );
        assert!(out.evals <= params.max_evals);
    }
}
