//! Minimal in-tree readiness-notification shim over Linux `epoll(7)` and
//! `eventfd(2)`.
//!
//! The build environment has no network access to a crate registry, so —
//! same discipline as `shim-rayon` — the workspace vendors the small slice
//! of an event-loop crate's API it actually uses: a level-triggered
//! [`Poller`] (`add` / `modify` / `remove` / `wait`) plus a [`Waker`] built
//! on an eventfd so other threads can interrupt a blocked `wait`. Only the
//! raw syscalls are declared via `extern "C"`; `std` already links libc on
//! Linux, so this adds no dependency.
//!
//! ## Model
//!
//! Registrations are **level-triggered**: as long as a registered fd has
//! unread input (or writable space, when write interest is set), every
//! `wait` reports it again. Callers therefore never need to drain a socket
//! in one pass to stay correct — the classic edge-triggered starvation bug
//! is structurally absent. Each registration carries a caller-chosen `u64`
//! token returned in [`Event::token`]; the shim imposes no meaning on it.
//!
//! Error/hangup conditions (`EPOLLERR` / `EPOLLHUP` / `EPOLLRDHUP`) are
//! folded into `readable` so a caller that simply reads the fd observes
//! the EOF or error through the normal `read` path; the raw condition is
//! also exposed as [`Event::closed`] for callers that want to short-cut.

#![cfg(target_os = "linux")]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

mod sys {
    //! Raw syscall surface. These symbols live in libc, which `std`
    //! already links; declaring them here keeps the crate std-only.
    use std::os::unix::io::RawFd;

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    /// Kernel ABI for `struct epoll_event`. On x86-64 the kernel packs
    /// this struct (no padding between `events` and `data`); elsewhere it
    /// uses natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: RawFd, events: *mut EpollEvent, maxevents: i32, timeout: i32)
            -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: RawFd, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: RawFd, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: RawFd) -> i32;
    }
}

/// What a registration wants to be woken for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut e = sys::EPOLLRDHUP;
        if self.readable {
            e |= sys::EPOLLIN;
        }
        if self.writable {
            e |= sys::EPOLLOUT;
        }
        e
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token supplied at registration time.
    pub token: u64,
    /// Input available — or an error/hangup condition that a `read` will
    /// surface as EOF/error.
    pub readable: bool,
    /// Write space available.
    pub writable: bool,
    /// The peer hung up or the fd errored (`EPOLLERR|EPOLLHUP|EPOLLRDHUP`).
    pub closed: bool,
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// A level-triggered epoll instance.
pub struct Poller {
    epfd: RawFd,
}

// An epoll fd is safe to share: the kernel serialises epoll_ctl/epoll_wait.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    pub fn new() -> io::Result<Poller> {
        let epfd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.bits(),
            data: token,
        };
        cvt(unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` with the given token and interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Change the token and/or interest of a registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregister `fd`. Safe to call on an fd about to be closed.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events: 0, data: 0 };
        cvt(unsafe { sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Block until at least one registered fd is ready (or the timeout
    /// expires; `None` blocks indefinitely). Ready events are appended to
    /// `out` after it is cleared; returns the number of events. `EINTR`
    /// retries transparently.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        out.clear();
        const MAX_EVENTS: usize = 256;
        let mut buf = [sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let n = loop {
            let r = unsafe {
                sys::epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as i32, timeout_ms)
            };
            if r >= 0 {
                break r as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &buf[..n] {
            let bits = ev.events;
            let closed = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
            out.push(Event {
                token: ev.data,
                readable: bits & sys::EPOLLIN != 0 || closed,
                writable: bits & sys::EPOLLOUT != 0,
                closed,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.epfd);
        }
    }
}

/// Cross-thread wakeup for a blocked [`Poller::wait`], built on a
/// nonblocking eventfd. Register [`Waker::fd`] with a reserved token;
/// [`Waker::wake`] makes that token readable, [`Waker::drain`] resets it.
pub struct Waker {
    fd: RawFd,
}

unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    pub fn new() -> io::Result<Waker> {
        let fd = cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Make the waker fd readable. Multiple wakes before a drain coalesce
    /// into one (the eventfd counter saturates, which is fine — wakeups
    /// are advisory).
    pub fn wake(&self) {
        let one: u64 = 1;
        // EAGAIN means the counter is already huge — the loop is awake.
        unsafe {
            sys::write(self.fd, (&one as *const u64).cast(), 8);
        }
    }

    /// Consume pending wakeups so `wait` stops reporting the waker ready.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe {
            sys::read(self.fd, buf.as_mut_ptr(), 8);
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .add(listener.as_raw_fd(), 7, Interest::READABLE)
            .unwrap();

        let mut events = Vec::new();
        // nothing pending yet
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        let (_conn, _) = listener.accept().unwrap();
    }

    #[test]
    fn stream_data_and_hangup_are_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(server_side.as_raw_fd(), 42, Interest::READABLE)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        let mut buf = [0u8; 16];
        let mut s = &server_side;
        assert_eq!(s.read(&mut buf).unwrap(), 4);

        drop(client);
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 42).expect("hangup event");
        assert!(ev.closed, "peer close should surface as closed");
        assert!(ev.readable, "closed folds into readable for EOF reads");
    }

    #[test]
    fn write_interest_and_modify() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        client.set_nonblocking(true).unwrap();
        let (_server_side, _) = listener.accept().unwrap();

        let poller = Poller::new().unwrap();
        poller
            .add(client.as_raw_fd(), 1, Interest::READABLE)
            .unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "idle socket with read interest is quiet");

        poller.modify(client.as_raw_fd(), 9, Interest::BOTH).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 9).expect("write event");
        assert!(ev.writable, "empty send buffer is writable");

        poller.remove(client.as_raw_fd()).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "removed fd no longer reports");
    }

    #[test]
    fn waker_interrupts_wait_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = Waker::new().unwrap();
        poller.add(waker.fd(), 0, Interest::READABLE).unwrap();

        let waker = std::sync::Arc::new(waker);
        let w2 = waker.clone();
        let t0 = Instant::now();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w2.wake();
            w2.wake(); // coalesces
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(t0.elapsed() < Duration::from_secs(5), "woke promptly");
        assert_eq!(events[0].token, 0);
        h.join().unwrap();
        waker.drain();

        // drained: wait times out quietly
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }
}
