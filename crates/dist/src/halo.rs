//! Per-rank subgrids and halo exchange.
//!
//! A [`SubGrid`] holds a rank's owned interior rows plus `depth` ghost rows
//! on each side. Physical-domain boundaries (rank 0's top, last rank's
//! bottom, and the left/right columns everywhere) hold the Dirichlet value;
//! the inter-rank ghost rows are filled by [`exchange`], which models the
//! point-to-point messages of a distributed run and counts them.

/// Communication statistics accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages (one per neighbour per exchange per field).
    pub messages: usize,
    /// Payload doubles moved between ranks.
    pub doubles: usize,
    /// Collective gather/scatter operations (coarse-level agglomeration).
    pub collectives: usize,
}

impl CommStats {
    /// Accumulate another stats record.
    pub fn add(&mut self, other: CommStats) {
        self.messages += other.messages;
        self.doubles += other.doubles;
        self.collectives += other.collectives;
    }

    /// Convert to the crate-neutral trace snapshot type.
    pub fn snapshot(&self) -> gmg_trace::CommSnapshot {
        gmg_trace::CommSnapshot {
            messages: self.messages as u64,
            doubles: self.doubles as u64,
            collectives: self.collectives as u64,
        }
    }
}

/// One rank's slab of a 2-D field: rows `[lo − depth, hi + depth]` of the
/// global `(n+2)×(n+2)` array (clamped to the global ghost ring), dense.
#[derive(Clone, Debug)]
pub struct SubGrid {
    /// First/last owned interior row.
    pub lo: i64,
    pub hi: i64,
    /// Ghost depth toward neighbouring ranks.
    pub depth: i64,
    /// Global interior size per dimension.
    pub n: i64,
    /// First global row stored in `data` (may be 0, the global ghost row).
    pub first_row: i64,
    /// Dense storage: `(rows) × (n+2)`.
    pub data: Vec<f64>,
}

impl SubGrid {
    /// New zeroed subgrid for owned rows `[lo, hi]` of an `n`-interior grid
    /// with ghost `depth` toward neighbours.
    pub fn new(lo: i64, hi: i64, depth: i64, n: i64) -> Self {
        assert!(depth >= 1 && lo >= 1 && hi <= n && lo <= hi);
        let first_row = (lo - depth).max(0);
        let last_row = (hi + depth).min(n + 1);
        let rows = (last_row - first_row + 1) as usize;
        SubGrid {
            lo,
            hi,
            depth,
            n,
            first_row,
            data: vec![0.0; rows * (n + 2) as usize],
        }
    }

    /// Stored rows.
    pub fn stored_rows(&self) -> i64 {
        self.data.len() as i64 / (self.n + 2)
    }

    /// Last global row stored.
    pub fn last_row(&self) -> i64 {
        self.first_row + self.stored_rows() - 1
    }

    /// Immutable view of global row `y`.
    pub fn row(&self, y: i64) -> &[f64] {
        let e = (self.n + 2) as usize;
        let r = (y - self.first_row) as usize;
        &self.data[r * e..(r + 1) * e]
    }

    /// Mutable view of global row `y`.
    pub fn row_mut(&mut self, y: i64) -> &mut [f64] {
        let e = (self.n + 2) as usize;
        let r = (y - self.first_row) as usize;
        &mut self.data[r * e..(r + 1) * e]
    }

    /// Value at global `(y, x)`.
    pub fn at(&self, y: i64, x: i64) -> f64 {
        self.row(y)[x as usize]
    }

    /// Copy this rank's owned rows from a dense global array.
    pub fn load_owned(&mut self, global: &[f64]) {
        let e = (self.n + 2) as usize;
        for y in self.lo..=self.hi {
            self.row_mut(y)
                .copy_from_slice(&global[y as usize * e..(y as usize + 1) * e]);
        }
    }

    /// Write this rank's owned rows into a dense global array.
    pub fn store_owned(&self, global: &mut [f64]) {
        let e = (self.n + 2) as usize;
        for y in self.lo..=self.hi {
            global[y as usize * e..(y as usize + 1) * e].copy_from_slice(self.row(y));
        }
    }
}

/// Geometry of one rank's slab, detached from its storage — what
/// [`exchange_views`] needs to exchange ghost rows over raw row-major
/// buffers (e.g. VM slot arrays during a `HaloExchange` op).
#[derive(Clone, Copy, Debug)]
pub struct HaloMeta {
    /// First/last owned interior row.
    pub lo: i64,
    pub hi: i64,
    /// Ghost depth toward neighbouring ranks.
    pub depth: i64,
    /// Global interior size per dimension.
    pub n: i64,
    /// First global row stored.
    pub first_row: i64,
    /// Last global row stored.
    pub last_row: i64,
}

impl HaloMeta {
    /// Geometry of a [`SubGrid`].
    pub fn of(g: &SubGrid) -> Self {
        HaloMeta {
            lo: g.lo,
            hi: g.hi,
            depth: g.depth,
            n: g.n,
            first_row: g.first_row,
            last_row: g.last_row(),
        }
    }
}

/// Exchange up to `depth` ghost rows between neighbouring ranks for one
/// field held as raw dense row-major buffers (`(rows) × (n+2)` each,
/// described by `metas`). Models two messages per interior boundary (one
/// each way) and returns the traffic. This is the storage-agnostic core
/// both [`exchange`] and the schedule VM's `HaloExchange` hook drive.
pub fn exchange_views(
    metas: &[HaloMeta],
    views: &mut [&mut [f64]],
    depth: i64,
) -> CommStats {
    assert_eq!(metas.len(), views.len());
    let e = metas.first().map(|m| (m.n + 2) as usize).unwrap_or(0);
    let row = |m: &HaloMeta, buf: &[f64], y: i64| -> Vec<f64> {
        let r = (y - m.first_row) as usize;
        buf[r * e..(r + 1) * e].to_vec()
    };
    let row_mut = |m: &HaloMeta, buf: &mut [f64], y: i64, src: &[f64]| {
        let r = (y - m.first_row) as usize;
        buf[r * e..(r + 1) * e].copy_from_slice(src);
    };
    let mut stats = CommStats::default();
    for i in 0..metas.len().saturating_sub(1) {
        let (ma, mb) = (metas[i], metas[i + 1]);
        debug_assert_eq!(ma.hi + 1, mb.lo, "ranks must be adjacent");
        let (l, r) = views.split_at_mut(i + 1);
        let (a, b) = (&mut *l[i], &mut *r[0]);
        let d = depth.min(ma.depth).min(mb.depth);
        // a → b: a's top-owned d rows become b's lower ghost rows
        for k in 0..d {
            let y = ma.hi - k;
            if y >= mb.first_row && y >= ma.lo {
                let src = row(&ma, a, y);
                row_mut(&mb, b, y, &src);
                stats.doubles += e;
            }
        }
        // b → a: b's bottom-owned d rows become a's upper ghost rows
        for k in 0..d {
            let y = mb.lo + k;
            if y <= ma.last_row && y <= mb.hi {
                let src = row(&mb, b, y);
                row_mut(&ma, a, y, &src);
                stats.doubles += e;
            }
        }
        stats.messages += 2;
    }
    stats
}

/// Exchange up to `depth` ghost rows between neighbouring ranks for one
/// field (the rows adjacent to each rank boundary). Models two messages per
/// interior boundary (one each way) and returns the traffic.
pub fn exchange(grids: &mut [SubGrid], depth: i64) -> CommStats {
    let metas: Vec<HaloMeta> = grids.iter().map(HaloMeta::of).collect();
    let mut views: Vec<&mut [f64]> = grids.iter_mut().map(|g| g.data.as_mut_slice()).collect();
    exchange_views(&metas, &mut views, depth)
}

/// [`exchange`] that also feeds the traffic into a [`gmg_trace::Trace`]
/// (a no-op for a disabled handle).
pub fn exchange_traced(
    grids: &mut [SubGrid],
    depth: i64,
    trace: &gmg_trace::Trace,
) -> CommStats {
    let stats = exchange(grids, depth);
    trace.record_comm(&stats.snapshot());
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subgrid_geometry() {
        let g = SubGrid::new(4, 6, 2, 12);
        assert_eq!(g.first_row, 2);
        assert_eq!(g.last_row(), 8);
        assert_eq!(g.stored_rows(), 7);
        // clamping at the physical boundary
        let g0 = SubGrid::new(1, 3, 2, 12);
        assert_eq!(g0.first_row, 0);
        assert_eq!(g0.last_row(), 5);
    }

    #[test]
    fn load_store_roundtrip() {
        let n = 8i64;
        let e = (n + 2) as usize;
        let global: Vec<f64> = (0..e * e).map(|i| i as f64).collect();
        let mut g = SubGrid::new(3, 5, 1, n);
        g.load_owned(&global);
        assert_eq!(g.at(3, 0), (3 * e) as f64);
        assert_eq!(g.at(5, 9), (5 * e + 9) as f64);
        let mut out = vec![0.0; e * e];
        g.store_owned(&mut out);
        for y in 3..=5usize {
            assert_eq!(&out[y * e..(y + 1) * e], &global[y * e..(y + 1) * e]);
        }
        assert_eq!(out[2 * e], 0.0, "non-owned rows untouched");
    }

    #[test]
    fn exchange_moves_boundary_rows() {
        let n = 8i64;
        let mut a = SubGrid::new(1, 4, 2, n);
        let mut b = SubGrid::new(5, 8, 2, n);
        for y in 1..=4 {
            a.row_mut(y).fill(y as f64);
        }
        for y in 5..=8 {
            b.row_mut(y).fill(y as f64 * 10.0);
        }
        let mut grids = vec![a, b];
        let stats = exchange(&mut grids, 2);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.doubles, 4 * (n as usize + 2));
        // b sees a's rows 3,4; a sees b's rows 5,6
        assert_eq!(grids[1].at(4, 3), 4.0);
        assert_eq!(grids[1].at(3, 3), 3.0);
        assert_eq!(grids[0].at(5, 3), 50.0);
        assert_eq!(grids[0].at(6, 3), 60.0);
    }

    #[test]
    fn shallow_exchange_moves_less() {
        let n = 8i64;
        let mut grids = vec![SubGrid::new(1, 4, 3, n), SubGrid::new(5, 8, 3, n)];
        grids[0].row_mut(4).fill(1.0);
        grids[1].row_mut(5).fill(2.0);
        let stats = exchange(&mut grids, 1);
        assert_eq!(stats.doubles, 2 * (n as usize + 2));
        assert_eq!(grids[1].at(4, 1), 1.0);
        // depth-2 ghost row untouched by a depth-1 exchange
        assert_eq!(grids[1].at(3, 1), 0.0);
    }

    #[test]
    fn comm_stats_accumulate() {
        let mut s = CommStats::default();
        s.add(CommStats {
            messages: 2,
            doubles: 10,
            collectives: 1,
        });
        s.add(CommStats {
            messages: 1,
            doubles: 5,
            collectives: 0,
        });
        assert_eq!(s.messages, 3);
        assert_eq!(s.doubles, 15);
        assert_eq!(s.collectives, 1);
    }
}
