//! Per-rank subgrids and halo exchange.
//!
//! A [`SubGrid`] holds a rank's owned interior rows plus `depth` ghost rows
//! on each side. Physical-domain boundaries (rank 0's top, last rank's
//! bottom, and the left/right columns everywhere) hold the Dirichlet value;
//! the inter-rank ghost rows are filled by [`exchange`], which models the
//! point-to-point messages of a distributed run and counts them.
//!
//! Fault injection: [`exchange_views_chaos`] consults a
//! [`polymg::FaultPlan`] per message. A fired `halo_drop` loses the whole
//! message, a fired `halo_short` delivers only a prefix of its rows; both
//! are recovered by bounded retry-with-backoff (resending only what is
//! still missing), surfacing [`HaloError::RetriesExhausted`] after
//! [`HALO_MAX_ATTEMPTS`]. [`CommStats`] always reports the *logical*
//! traffic — retries never inflate `messages`/`doubles`, so a recovered
//! chaos run is byte- and stats-identical to its fault-free twin.

use polymg::{FaultPlan, FaultSite};
use std::time::Duration;

/// Bound on delivery attempts per message before a halo exchange gives up.
pub const HALO_MAX_ATTEMPTS: usize = 8;

/// Typed halo-exchange failure (only reachable with an armed fault plan).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HaloError {
    /// A message kept failing past [`HALO_MAX_ATTEMPTS`].
    RetriesExhausted {
        attempts: usize,
        detail: &'static str,
    },
}

impl std::fmt::Display for HaloError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HaloError::RetriesExhausted { attempts, detail } => {
                write!(f, "halo message failed {attempts} times: {detail}")
            }
        }
    }
}

impl std::error::Error for HaloError {}

/// Communication statistics accumulated over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages (one per neighbour per exchange per field).
    pub messages: usize,
    /// Payload doubles moved between ranks.
    pub doubles: usize,
    /// Collective gather/scatter operations (coarse-level agglomeration).
    pub collectives: usize,
}

impl CommStats {
    /// Accumulate another stats record.
    pub fn add(&mut self, other: CommStats) {
        self.messages += other.messages;
        self.doubles += other.doubles;
        self.collectives += other.collectives;
    }

    /// Convert to the crate-neutral trace snapshot type.
    pub fn snapshot(&self) -> gmg_trace::CommSnapshot {
        gmg_trace::CommSnapshot {
            messages: self.messages as u64,
            doubles: self.doubles as u64,
            collectives: self.collectives as u64,
        }
    }
}

/// One rank's slab of a 2-D field: rows `[lo − depth, hi + depth]` of the
/// global `(n+2)×(n+2)` array (clamped to the global ghost ring), dense.
#[derive(Clone, Debug)]
pub struct SubGrid {
    /// First/last owned interior row.
    pub lo: i64,
    pub hi: i64,
    /// Ghost depth toward neighbouring ranks.
    pub depth: i64,
    /// Global interior size per dimension.
    pub n: i64,
    /// First global row stored in `data` (may be 0, the global ghost row).
    pub first_row: i64,
    /// Dense storage: `(rows) × (n+2)`.
    pub data: Vec<f64>,
}

impl SubGrid {
    /// New zeroed subgrid for owned rows `[lo, hi]` of an `n`-interior grid
    /// with ghost `depth` toward neighbours.
    pub fn new(lo: i64, hi: i64, depth: i64, n: i64) -> Self {
        assert!(depth >= 1 && lo >= 1 && hi <= n && lo <= hi);
        let first_row = (lo - depth).max(0);
        let last_row = (hi + depth).min(n + 1);
        let rows = (last_row - first_row + 1) as usize;
        SubGrid {
            lo,
            hi,
            depth,
            n,
            first_row,
            data: vec![0.0; rows * (n + 2) as usize],
        }
    }

    /// Stored rows.
    pub fn stored_rows(&self) -> i64 {
        self.data.len() as i64 / (self.n + 2)
    }

    /// Last global row stored.
    pub fn last_row(&self) -> i64 {
        self.first_row + self.stored_rows() - 1
    }

    /// Immutable view of global row `y`.
    pub fn row(&self, y: i64) -> &[f64] {
        let e = (self.n + 2) as usize;
        let r = (y - self.first_row) as usize;
        &self.data[r * e..(r + 1) * e]
    }

    /// Mutable view of global row `y`.
    pub fn row_mut(&mut self, y: i64) -> &mut [f64] {
        let e = (self.n + 2) as usize;
        let r = (y - self.first_row) as usize;
        &mut self.data[r * e..(r + 1) * e]
    }

    /// Value at global `(y, x)`.
    pub fn at(&self, y: i64, x: i64) -> f64 {
        self.row(y)[x as usize]
    }

    /// Copy this rank's owned rows from a dense global array.
    pub fn load_owned(&mut self, global: &[f64]) {
        let e = (self.n + 2) as usize;
        for y in self.lo..=self.hi {
            self.row_mut(y)
                .copy_from_slice(&global[y as usize * e..(y as usize + 1) * e]);
        }
    }

    /// Write this rank's owned rows into a dense global array.
    pub fn store_owned(&self, global: &mut [f64]) {
        let e = (self.n + 2) as usize;
        for y in self.lo..=self.hi {
            global[y as usize * e..(y as usize + 1) * e].copy_from_slice(self.row(y));
        }
    }
}

/// Geometry of one rank's slab, detached from its storage — what
/// [`exchange_views`] needs to exchange ghost rows over raw row-major
/// buffers (e.g. VM slot arrays during a `HaloExchange` op).
#[derive(Clone, Copy, Debug)]
pub struct HaloMeta {
    /// First/last owned interior row.
    pub lo: i64,
    pub hi: i64,
    /// Ghost depth toward neighbouring ranks.
    pub depth: i64,
    /// Global interior size per dimension.
    pub n: i64,
    /// First global row stored.
    pub first_row: i64,
    /// Last global row stored.
    pub last_row: i64,
}

impl HaloMeta {
    /// Geometry of a [`SubGrid`].
    pub fn of(g: &SubGrid) -> Self {
        HaloMeta {
            lo: g.lo,
            hi: g.hi,
            depth: g.depth,
            n: g.n,
            first_row: g.first_row,
            last_row: g.last_row(),
        }
    }
}

/// Exchange up to `depth` ghost rows between neighbouring ranks for one
/// field held as raw dense row-major buffers (`(rows) × (n+2)` each,
/// described by `metas`). Models two messages per interior boundary (one
/// each way) and returns the traffic. This is the storage-agnostic core
/// both [`exchange`] and the schedule VM's `HaloExchange` hook drive.
pub fn exchange_views(metas: &[HaloMeta], views: &mut [&mut [f64]], depth: i64) -> CommStats {
    exchange_views_chaos(metas, views, depth, None)
        .unwrap_or_else(|_| unreachable!("halo exchange without fault injection is infallible"))
}

/// Deliver one message: copy `ys` rows from `src` to `dst`, consulting the
/// fault plan per attempt. A dropped message resends everything missing; a
/// short read delivers a prefix of the missing rows, then resends the rest.
/// Retries back off exponentially (micro-scale — this models, not incurs,
/// network latency). `doubles` counts each row exactly once.
#[allow(clippy::too_many_arguments)]
fn deliver(
    e: usize,
    src_m: &HaloMeta,
    src: &[f64],
    dst_m: &HaloMeta,
    dst: &mut [f64],
    ys: &[i64],
    stats: &mut CommStats,
    chaos: Option<&FaultPlan>,
) -> Result<(), HaloError> {
    let row_range = |m: &HaloMeta, y: i64| {
        let r = (y - m.first_row) as usize;
        r * e..(r + 1) * e
    };
    let mut delivered = 0usize;
    let mut attempt = 0usize;
    while delivered < ys.len() {
        attempt += 1;
        if let Some(c) = chaos {
            if c.should_fire(FaultSite::HaloDrop) {
                if attempt >= HALO_MAX_ATTEMPTS {
                    return Err(HaloError::RetriesExhausted {
                        attempts: attempt,
                        detail: "message dropped",
                    });
                }
                std::thread::sleep(Duration::from_micros(1 << attempt.min(6)));
                c.record_recovered(FaultSite::HaloDrop);
                continue;
            }
            if c.should_fire(FaultSite::HaloShort) {
                // a prefix of the missing rows arrives, then the read breaks
                let take = ((ys.len() - delivered) / 2).max(1);
                for &y in &ys[delivered..delivered + take] {
                    let s = row_range(src_m, y);
                    dst[row_range(dst_m, y)].copy_from_slice(&src[s]);
                    stats.doubles += e;
                }
                delivered += take;
                if delivered == ys.len() {
                    c.record_recovered(FaultSite::HaloShort);
                    break;
                }
                if attempt >= HALO_MAX_ATTEMPTS {
                    return Err(HaloError::RetriesExhausted {
                        attempts: attempt,
                        detail: "short read",
                    });
                }
                std::thread::sleep(Duration::from_micros(1 << attempt.min(6)));
                c.record_recovered(FaultSite::HaloShort);
                continue;
            }
        }
        for &y in &ys[delivered..] {
            let s = row_range(src_m, y);
            dst[row_range(dst_m, y)].copy_from_slice(&src[s]);
            stats.doubles += e;
        }
        delivered = ys.len();
    }
    Ok(())
}

/// [`exchange_views`] with deterministic fault injection: every message
/// consults `chaos` at the `halo_drop` / `halo_short` sites and recovers
/// via bounded retry. On success the result is bitwise- and stats-identical
/// to the fault-free exchange.
pub fn exchange_views_chaos(
    metas: &[HaloMeta],
    views: &mut [&mut [f64]],
    depth: i64,
    chaos: Option<&FaultPlan>,
) -> Result<CommStats, HaloError> {
    assert_eq!(metas.len(), views.len());
    let e = metas.first().map(|m| (m.n + 2) as usize).unwrap_or(0);
    let chaos = chaos.filter(|c| c.is_enabled());
    let mut stats = CommStats::default();
    for i in 0..metas.len().saturating_sub(1) {
        let (ma, mb) = (metas[i], metas[i + 1]);
        debug_assert_eq!(ma.hi + 1, mb.lo, "ranks must be adjacent");
        let (l, r) = views.split_at_mut(i + 1);
        let (a, b) = (&mut *l[i], &mut *r[0]);
        let d = depth.min(ma.depth).min(mb.depth);
        // a → b: a's top-owned d rows become b's lower ghost rows
        let ys_ab: Vec<i64> = (0..d)
            .map(|k| ma.hi - k)
            .filter(|&y| y >= mb.first_row && y >= ma.lo)
            .collect();
        deliver(e, &ma, a, &mb, b, &ys_ab, &mut stats, chaos)?;
        // b → a: b's bottom-owned d rows become a's upper ghost rows
        let ys_ba: Vec<i64> = (0..d)
            .map(|k| mb.lo + k)
            .filter(|&y| y <= ma.last_row && y <= mb.hi)
            .collect();
        deliver(e, &mb, b, &ma, a, &ys_ba, &mut stats, chaos)?;
        stats.messages += 2;
    }
    Ok(stats)
}

/// Exchange up to `depth` ghost rows between neighbouring ranks for one
/// field (the rows adjacent to each rank boundary). Models two messages per
/// interior boundary (one each way) and returns the traffic.
pub fn exchange(grids: &mut [SubGrid], depth: i64) -> CommStats {
    let metas: Vec<HaloMeta> = grids.iter().map(HaloMeta::of).collect();
    let mut views: Vec<&mut [f64]> = grids.iter_mut().map(|g| g.data.as_mut_slice()).collect();
    exchange_views(&metas, &mut views, depth)
}

/// [`exchange`] that also feeds the traffic into a [`gmg_trace::Trace`]
/// (a no-op for a disabled handle).
pub fn exchange_traced(grids: &mut [SubGrid], depth: i64, trace: &gmg_trace::Trace) -> CommStats {
    let stats = exchange(grids, depth);
    trace.record_comm(&stats.snapshot());
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subgrid_geometry() {
        let g = SubGrid::new(4, 6, 2, 12);
        assert_eq!(g.first_row, 2);
        assert_eq!(g.last_row(), 8);
        assert_eq!(g.stored_rows(), 7);
        // clamping at the physical boundary
        let g0 = SubGrid::new(1, 3, 2, 12);
        assert_eq!(g0.first_row, 0);
        assert_eq!(g0.last_row(), 5);
    }

    #[test]
    fn load_store_roundtrip() {
        let n = 8i64;
        let e = (n + 2) as usize;
        let global: Vec<f64> = (0..e * e).map(|i| i as f64).collect();
        let mut g = SubGrid::new(3, 5, 1, n);
        g.load_owned(&global);
        assert_eq!(g.at(3, 0), (3 * e) as f64);
        assert_eq!(g.at(5, 9), (5 * e + 9) as f64);
        let mut out = vec![0.0; e * e];
        g.store_owned(&mut out);
        for y in 3..=5usize {
            assert_eq!(&out[y * e..(y + 1) * e], &global[y * e..(y + 1) * e]);
        }
        assert_eq!(out[2 * e], 0.0, "non-owned rows untouched");
    }

    #[test]
    fn exchange_moves_boundary_rows() {
        let n = 8i64;
        let mut a = SubGrid::new(1, 4, 2, n);
        let mut b = SubGrid::new(5, 8, 2, n);
        for y in 1..=4 {
            a.row_mut(y).fill(y as f64);
        }
        for y in 5..=8 {
            b.row_mut(y).fill(y as f64 * 10.0);
        }
        let mut grids = vec![a, b];
        let stats = exchange(&mut grids, 2);
        assert_eq!(stats.messages, 2);
        assert_eq!(stats.doubles, 4 * (n as usize + 2));
        // b sees a's rows 3,4; a sees b's rows 5,6
        assert_eq!(grids[1].at(4, 3), 4.0);
        assert_eq!(grids[1].at(3, 3), 3.0);
        assert_eq!(grids[0].at(5, 3), 50.0);
        assert_eq!(grids[0].at(6, 3), 60.0);
    }

    #[test]
    fn shallow_exchange_moves_less() {
        let n = 8i64;
        let mut grids = vec![SubGrid::new(1, 4, 3, n), SubGrid::new(5, 8, 3, n)];
        grids[0].row_mut(4).fill(1.0);
        grids[1].row_mut(5).fill(2.0);
        let stats = exchange(&mut grids, 1);
        assert_eq!(stats.doubles, 2 * (n as usize + 2));
        assert_eq!(grids[1].at(4, 1), 1.0);
        // depth-2 ghost row untouched by a depth-1 exchange
        assert_eq!(grids[1].at(3, 1), 0.0);
    }

    fn two_filled_ranks(n: i64) -> Vec<SubGrid> {
        let mut a = SubGrid::new(1, 4, 2, n);
        let mut b = SubGrid::new(5, 8, 2, n);
        for y in 1..=4 {
            a.row_mut(y).fill(y as f64);
        }
        for y in 5..=8 {
            b.row_mut(y).fill(y as f64 * 10.0);
        }
        vec![a, b]
    }

    #[test]
    fn chaos_exchange_recovers_bitwise() {
        use polymg::{chaos::SITE_HALO, ChaosOptions};
        let n = 8i64;
        let mut clean = two_filled_ranks(n);
        let clean_stats = exchange(&mut clean, 2);

        let mut chaotic = two_filled_ranks(n);
        let plan = FaultPlan::new(ChaosOptions::new(1234, 0.5).with_sites(SITE_HALO));
        let metas: Vec<HaloMeta> = chaotic.iter().map(HaloMeta::of).collect();
        let mut views: Vec<&mut [f64]> =
            chaotic.iter_mut().map(|g| g.data.as_mut_slice()).collect();
        let stats = exchange_views_chaos(&metas, &mut views, 2, Some(&plan)).expect("must recover");
        assert_eq!(stats, clean_stats, "retries must not inflate comm stats");
        for (c, k) in clean.iter().zip(&chaotic) {
            assert_eq!(
                c.data, k.data,
                "recovered exchange must be bitwise-identical"
            );
        }
        let snap = plan.snapshot();
        assert!(snap.total_fired() > 0, "this seed/rate must actually fire");
        assert_eq!(snap.total_fired(), snap.total_recovered());
    }

    #[test]
    fn chaos_exchange_rate_one_exhausts_retries() {
        use polymg::{chaos::SITE_HALO, ChaosOptions};
        let mut grids = two_filled_ranks(8);
        let plan = FaultPlan::new(ChaosOptions::new(7, 1.0).with_sites(SITE_HALO));
        let metas: Vec<HaloMeta> = grids.iter().map(HaloMeta::of).collect();
        let mut views: Vec<&mut [f64]> = grids.iter_mut().map(|g| g.data.as_mut_slice()).collect();
        let err = exchange_views_chaos(&metas, &mut views, 2, Some(&plan))
            .expect_err("rate 1.0 must exhaust the bounded retry");
        let HaloError::RetriesExhausted { attempts, .. } = err;
        assert_eq!(attempts, HALO_MAX_ATTEMPTS);
    }

    #[test]
    fn comm_stats_accumulate() {
        let mut s = CommStats::default();
        s.add(CommStats {
            messages: 2,
            doubles: 10,
            collectives: 1,
        });
        s.add(CommStats {
            messages: 1,
            doubles: 5,
            collectives: 0,
        });
        assert_eq!(s.messages, 3);
        assert_eq!(s.doubles, 15);
        assert_eq!(s.collectives, 1);
    }
}
