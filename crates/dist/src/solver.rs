//! Distributed 2-D Poisson V-/W-cycle with communication aggregation.
//!
//! The finest level is decomposed across ranks ([`RankLayout`]); all
//! coarser levels are agglomerated onto rank 0 and solved by the
//! shared-memory `handopt` recursion (standard practice for small coarse
//! grids — the gather/scatter shows up in [`CommStats::collectives`]).
//!
//! Smoothing uses **deep ghost zones**: with ghost depth `g`, one exchange
//! provides enough halo for `g` Jacobi steps; step `s` of a batch computes
//! the owned rows extended by `g − 1 − s` rows into the halo (redundant
//! work), so after the batch the owned rows are exactly what a global sweep
//! would hold. This is Williams et al.'s communication aggregation, which
//! the paper identifies as "equivalent to overlapped tiling, but applied in
//! a distributed-memory parallelization setting" — depth 1 is the classic
//! exchange-every-step scheme; deeper halos trade redundant flops for
//! fewer, larger messages.
//!
//! The smoother batches are *not* hand-looped: each batch size lowers once
//! into a hand-assembled [`ExecProgram`] (a `HaloExchange` hook op followed
//! by one `RunUntiledStage` per step per rank over the shrinking-halo
//! domain, plus a `CopyLiveOut` parity fix-up for odd batches) and runs on
//! the shared schedule VM ([`gmg_runtime::Engine`]); the `HaloExchange` op
//! calls back into [`crate::halo::exchange_views`] through
//! [`gmg_runtime::ExecHooks`].

// Index-based loops here mirror the math (multi-slice stencil updates); clippy prefers iterators but the indices are the clearer notation.
#![allow(clippy::needless_range_loop)]

use crate::decomp::RankLayout;
use crate::halo::{exchange, exchange_views_chaos, CommStats, HaloError, HaloMeta, SubGrid};
use gmg_ir::expr::Operand;
use gmg_ir::ParityPattern;
use gmg_multigrid::config::{CycleType, MgConfig, SmootherKind};
use gmg_multigrid::handopt::HandOpt;
use gmg_poly::{BoxDomain, Interval};
use gmg_runtime::{Engine, ExecError, ExecHooks, SlotView};
use polymg::schedule::{ExecOp, ExecProgram, OpInput, SlotSpec, StageExec};
use polymg::{ChaosOptions, FaultPlan, KernelBody, KernelCase, StageKernel};
use std::collections::HashMap;
use std::sync::Arc;

/// Distributed 2-D Poisson solver state.
pub struct DistPoisson2D {
    cfg: MgConfig,
    layout: RankLayout,
    ghost_depth: i64,
    /// Per-rank iterate / modulo partner / RHS at the finest level.
    u: Vec<SubGrid>,
    tmp: Vec<SubGrid>,
    rhs: Vec<SubGrid>,
    /// Agglomerated coarse-level solver (levels − 1 of the hierarchy).
    coarse: HandOpt,
    coarse_cfg: MgConfig,
    /// Dense coarse buffers on "rank 0".
    coarse_rhs: Vec<f64>,
    coarse_e: Vec<f64>,
    stats: CommStats,
    /// Redundant halo points computed by aggregated smoothing.
    pub redundant_points: usize,
    /// Schedule-VM engines for the fine-level smoother, keyed by batch size
    /// (steps per exchange), paired with the redundant points one run adds.
    vms: HashMap<usize, (Engine, usize)>,
    /// One fault plan shared by every smoother engine and the halo layer,
    /// so fault decisions and counters stay globally ordered across the
    /// whole distributed run.
    chaos: Arc<FaultPlan>,
}

/// [`ExecHooks`] of the distributed smoother programs: a `HaloExchange` op
/// exchanges the iterate slots through the simulated communication layer.
struct DistHooks<'m> {
    metas: &'m [HaloMeta],
    u_slots: &'m [usize],
    stats: CommStats,
    chaos: &'m FaultPlan,
}

impl ExecHooks for DistHooks<'_> {
    fn halo_exchange(
        &mut self,
        depth: usize,
        slots: &mut SlotView<'_, '_>,
    ) -> Result<(), ExecError> {
        let mut views = slots.many_mut(self.u_slots)?;
        let stats = exchange_views_chaos(self.metas, &mut views, depth as i64, Some(self.chaos))
            .map_err(|e| match e {
                HaloError::RetriesExhausted { attempts, .. } => ExecError::HaloFailed {
                    attempts,
                    detail: e.to_string(),
                },
            })?;
        self.stats.add(stats);
        Ok(())
    }
}

impl DistPoisson2D {
    /// New solver: `p` ranks, ghost depth `g ≥ 1`.
    pub fn new(cfg: MgConfig, p: usize, ghost_depth: i64) -> Self {
        assert_eq!(cfg.ndims, 2, "distributed solver is 2-D");
        assert_eq!(
            cfg.smoother,
            SmootherKind::Jacobi,
            "deep-halo aggregation implemented for Jacobi"
        );
        assert!(cfg.levels >= 2, "need at least one coarse level");
        assert!(ghost_depth >= 1);
        let n = cfg.n_at(cfg.levels - 1);
        let layout = RankLayout::new(n, p);
        let owned = layout.owned.clone();
        let mk = || -> Vec<SubGrid> {
            owned
                .iter()
                .map(|&(lo, hi)| SubGrid::new(lo, hi, ghost_depth, n))
                .collect()
        };
        let mut coarse_cfg = cfg.clone();
        coarse_cfg.levels = cfg.levels - 1;
        coarse_cfg.n = cfg.n_at(cfg.levels - 2);
        let clen = coarse_cfg.alloc_len(coarse_cfg.levels - 1);
        DistPoisson2D {
            coarse: HandOpt::new(coarse_cfg.clone()),
            coarse_cfg,
            layout,
            ghost_depth,
            u: mk(),
            tmp: mk(),
            rhs: mk(),
            cfg,
            coarse_rhs: vec![0.0; clen],
            coarse_e: vec![0.0; clen],
            stats: CommStats::default(),
            redundant_points: 0,
            vms: HashMap::new(),
            chaos: Arc::new(FaultPlan::disabled()),
        }
    }

    /// Accumulated communication statistics.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Arm (or with `None`, disarm) deterministic fault injection across
    /// the whole distributed stack: one shared plan drives the halo layer
    /// and every smoother engine.
    pub fn set_chaos(&mut self, opts: Option<ChaosOptions>) {
        self.chaos = Arc::new(match opts {
            Some(o) => FaultPlan::new(o),
            None => FaultPlan::disabled(),
        });
        for (engine, _) in self.vms.values_mut() {
            engine.set_fault_plan(self.chaos.clone());
        }
    }

    /// The shared fault plan (disabled by default) — read its counters to
    /// see what fired and what was recovered.
    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        &self.chaos
    }

    /// One multigrid cycle: `v ← cycle(v, f)` on dense global buffers
    /// (scattered to ranks, gathered back — counted as collectives, as a
    /// real driver would only do once per solve, not per cycle; callers
    /// benchmarking communication should use the per-cycle deltas of
    /// [`Self::stats`] minus the scatter/gather of this convenience entry).
    pub fn cycle(&mut self, v: &mut [f64], f: &[f64]) -> Result<(), ExecError> {
        for g in self.u.iter_mut() {
            g.load_owned(v);
        }
        for g in self.rhs.iter_mut() {
            g.load_owned(f);
        }
        self.stats.collectives += 2;
        // rhs halo: smoothing in the halo region needs rhs there too
        self.stats.add(exchange(&mut self.rhs, self.ghost_depth));

        let shape = self.cfg.cycle;
        self.run_cycle(shape)?;

        for g in &self.u {
            g.store_owned(v);
        }
        self.stats.collectives += 1;
        Ok(())
    }

    fn run_cycle(&mut self, shape: CycleType) -> Result<(), ExecError> {
        let steps = self.cfg.steps;
        // pre-smoothing with aggregation
        self.smooth(steps.pre)?;
        // residual into tmp (owned rows; needs u halo 1)
        self.exchange_u(1);
        self.residual_into_tmp();
        // restrict to agglomerated coarse rhs (needs tmp halo 1)
        self.stats.add(exchange(&mut self.tmp, 1));
        self.gather_restrict();
        // coarse solve (rank 0): first visit from zero guess
        self.coarse_e.fill(0.0);
        let rhs = std::mem::take(&mut self.coarse_rhs);
        let mut e = std::mem::take(&mut self.coarse_e);
        self.coarse.cycle(&mut e, &rhs);
        if matches!(shape, CycleType::W | CycleType::F) {
            // second coarse visit, same semantics as the shared-memory code
            self.coarse.cycle(&mut e, &rhs);
        }
        self.coarse_rhs = rhs;
        self.coarse_e = e;
        // scatter + interpolate + correct
        self.scatter_interp_correct();
        // post-smoothing
        self.smooth(steps.post)
    }

    /// Aggregated smoothing: batches of up to `g` steps per exchange, each
    /// batch executed as one schedule-VM program.
    fn smooth(&mut self, steps: usize) -> Result<(), ExecError> {
        let g = self.ghost_depth as usize;
        let mut done = 0usize;
        while done < steps {
            let batch = g.min(steps - done);
            self.smooth_batch_vm(batch)?;
            done += batch;
        }
        Ok(())
    }

    fn exchange_u(&mut self, depth: i64) {
        self.stats.add(exchange(&mut self.u, depth));
    }

    /// Slot ids of the per-rank triples `(u, tmp, rhs)`.
    fn slot_u(r: usize) -> usize {
        3 * r
    }
    fn slot_tmp(r: usize) -> usize {
        3 * r + 1
    }
    fn slot_rhs(r: usize) -> usize {
        3 * r + 2
    }

    /// Lower one smoother batch into an [`ExecProgram`]: an exchange hook
    /// op, then per step per rank one untiled Jacobi sweep over the
    /// shrinking-halo domain, then (odd batches) a `CopyLiveOut` moving the
    /// final iterate from the modulo partner back into `u`. Returns the
    /// program and the redundant halo points one run computes.
    fn build_batch_program(&self, batch: usize) -> (ExecProgram, usize) {
        let n = self.cfg.n_at(self.cfg.levels - 1);
        let h = self.cfg.h_at(self.cfg.levels - 1);
        let w = self.cfg.omega * h * h / 4.0;
        let inv_h2 = 1.0 / (h * h);
        let e = (n + 2) as usize;
        let nranks = self.layout.num_ranks();

        let mut slots = Vec::with_capacity(3 * nranks);
        for (r, g) in self.u.iter().enumerate() {
            for tag in ["u", "tmp", "rhs"] {
                slots.push(SlotSpec {
                    name: format!("{tag}{r}"),
                    origin: vec![g.first_row, 0],
                    extents: vec![g.stored_rows(), n + 2],
                    boundary: 0.0,
                    external: true,
                });
            }
        }

        // Same per-point expression (and evaluation order) as a global
        // Jacobi sweep, so distributed results stay bitwise identical:
        //   a = (4·u − u_W − u_E − u_N − u_S) · h⁻²;  u − ω·h²/4 · (a − f)
        let u = Operand::Slot(0);
        let f = Operand::Slot(1);
        let a =
            (4.0 * u.at(&[0, 0]) - u.at(&[0, -1]) - u.at(&[0, 1]) - u.at(&[-1, 0]) - u.at(&[1, 0]))
                * inv_h2;
        let expr = u.at(&[0, 0]) - w * (a - f.at(&[0, 0]));
        let kernels = vec![StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(2),
                body: KernelBody::Interpreted(expr),
            }],
        }];

        let mut ops = vec![ExecOp::HaloExchange { depth: batch }];
        let mut redundant = 0usize;
        for s in 0..batch {
            let shrink = (batch - 1 - s) as i64;
            for r in 0..nranks {
                let (lo, hi) = self.layout.rows(r);
                let ylo = (lo - shrink).max(1);
                let yhi = (hi + shrink).min(n);
                // even steps read u and write tmp; odd steps the reverse
                let (src, dst) = if s % 2 == 0 {
                    (Self::slot_u(r), Self::slot_tmp(r))
                } else {
                    (Self::slot_tmp(r), Self::slot_u(r))
                };
                ops.push(ExecOp::RunUntiledStage {
                    stage: StageExec {
                        name: format!("jacobi.s{s}.r{r}"),
                        kernel: 0,
                        domain: BoxDomain::new(vec![Interval::new(ylo, yhi), Interval::new(1, n)]),
                        boundary: 0.0,
                        ins: vec![
                            OpInput::Slot {
                                slot: src,
                                boundary: 0.0,
                            },
                            OpInput::Slot {
                                slot: Self::slot_rhs(r),
                                boundary: 0.0,
                            },
                        ],
                        slot: Some(dst),
                        impl_tag: polymg::KernelImpl::Generic,
                        tier: polymg::KernelTier::Scalar,
                        xblock: 0,
                    },
                });
                redundant += ((yhi - ylo + 1) - (hi - lo + 1)).max(0) as usize * e;
            }
        }
        if batch % 2 == 1 {
            // the final iterate landed in tmp: copy the owned rows (full
            // width, matching the old buffer swap) back into u
            for r in 0..nranks {
                let (lo, hi) = self.layout.rows(r);
                ops.push(ExecOp::CopyLiveOut {
                    src: Self::slot_tmp(r),
                    dst: Self::slot_u(r),
                    region: BoxDomain::new(vec![Interval::new(lo, hi), Interval::new(0, n + 1)]),
                });
            }
        }

        (
            ExecProgram {
                name: format!("dist-jacobi-b{batch}"),
                slots,
                kernels,
                ops,
                pooled: false,
                threads: 0,
            },
            redundant,
        )
    }

    /// Run one `batch`-step smoother program on the shared VM.
    fn smooth_batch_vm(&mut self, batch: usize) -> Result<(), ExecError> {
        if !self.vms.contains_key(&batch) {
            let (program, redundant) = self.build_batch_program(batch);
            let mut engine = Engine::from_program(program);
            engine.set_fault_plan(self.chaos.clone());
            self.vms.insert(batch, (engine, redundant));
        }
        let Some((mut engine, redundant)) = self.vms.remove(&batch) else {
            return Err(ExecError::PlanViolation(
                "smoother VM missing right after insertion",
            ));
        };

        let nranks = self.layout.num_ranks();
        let metas: Vec<HaloMeta> = self.u.iter().map(HaloMeta::of).collect();
        let u_slots: Vec<usize> = (0..nranks).map(Self::slot_u).collect();
        let names: Vec<[String; 3]> = (0..nranks)
            .map(|r| [format!("u{r}"), format!("tmp{r}"), format!("rhs{r}")])
            .collect();

        let mut outputs: Vec<(&str, &mut [f64])> = Vec::with_capacity(2 * nranks);
        for (r, (gu, gt)) in self.u.iter_mut().zip(self.tmp.iter_mut()).enumerate() {
            outputs.push((&names[r][0], gu.data.as_mut_slice()));
            outputs.push((&names[r][1], gt.data.as_mut_slice()));
        }
        let inputs: Vec<(&str, &[f64])> = self
            .rhs
            .iter()
            .enumerate()
            .map(|(r, g)| (names[r][2].as_str(), g.data.as_slice()))
            .collect();

        let mut hooks = DistHooks {
            metas: &metas,
            u_slots: &u_slots,
            stats: CommStats::default(),
            chaos: &self.chaos,
        };
        let run = engine.run_with_hooks(&inputs, outputs, &mut hooks);
        // the engine goes back even when the run failed: a contained fault
        // must leave the solver reusable
        self.stats.add(hooks.stats);
        self.vms.insert(batch, (engine, redundant));
        run?;
        self.redundant_points += redundant;
        Ok(())
    }

    /// `tmp ← rhs − A·u` on owned rows.
    fn residual_into_tmp(&mut self) {
        let n = self.cfg.n_at(self.cfg.levels - 1);
        let h = self.cfg.h_at(self.cfg.levels - 1);
        let inv_h2 = 1.0 / (h * h);
        for r in 0..self.layout.num_ranks() {
            let (lo, hi) = self.layout.rows(r);
            let src = &self.u[r];
            let rh = &self.rhs[r];
            let dst = &mut self.tmp[r];
            for y in lo..=hi {
                let up = src.row(y - 1);
                let mid = src.row(y);
                let dn = src.row(y + 1);
                let rr = rh.row(y);
                let out = dst.row_mut(y);
                for x in 1..=n as usize {
                    let a = (4.0 * mid[x] - mid[x - 1] - mid[x + 1] - up[x] - dn[x]) * inv_h2;
                    out[x] = rr[x] - a;
                }
            }
        }
    }

    /// Full-weighting restriction of `tmp` into the rank-0 coarse RHS
    /// (gather collective).
    fn gather_restrict(&mut self) {
        let nc = self.coarse_cfg.n_at(self.coarse_cfg.levels - 1);
        let ec = (nc + 2) as usize;
        self.coarse_rhs.fill(0.0);
        for yc in 1..=nc {
            let yf = 2 * yc;
            let r = self.layout.rank_of(yf);
            let g = &self.tmp[r];
            let (um, mm, dm) = (g.row(yf - 1), g.row(yf), g.row(yf + 1));
            let out = &mut self.coarse_rhs[yc as usize * ec..(yc as usize + 1) * ec];
            for xc in 1..=nc as usize {
                let xf = 2 * xc;
                out[xc] = (um[xf - 1]
                    + um[xf + 1]
                    + dm[xf - 1]
                    + dm[xf + 1]
                    + 2.0 * (um[xf] + dm[xf] + mm[xf - 1] + mm[xf + 1])
                    + 4.0 * mm[xf])
                    / 16.0;
            }
        }
        self.stats.collectives += 1;
        self.stats.doubles += (nc as usize) * ec;
    }

    /// Scatter the coarse correction and apply bilinear interp + correction
    /// on owned rows.
    fn scatter_interp_correct(&mut self) {
        let n = self.cfg.n_at(self.cfg.levels - 1);
        let nc = self.coarse_cfg.n_at(self.coarse_cfg.levels - 1);
        let ec = (nc + 2) as usize;
        let coarse = &self.coarse_e;
        self.stats.collectives += 1;
        for r in 0..self.layout.num_ranks() {
            let (lo, hi) = self.layout.rows(r);
            // a real scatter ships coarse rows ⌊(lo−1)/2⌋ … ⌈(hi+1)/2⌉
            self.stats.doubles += (((hi + 1) / 2 + 1) - ((lo - 1) / 2) + 1).max(0) as usize * ec;
            let g = &mut self.u[r];
            for y in lo..=hi {
                let ys: &[usize] = &if y % 2 == 0 {
                    vec![(y / 2) as usize]
                } else {
                    vec![((y - 1) / 2) as usize, ((y + 1) / 2) as usize]
                };
                let out = g.row_mut(y);
                for x in 1..=n as usize {
                    let xs: &[usize] = &if x % 2 == 0 {
                        vec![x / 2]
                    } else {
                        vec![(x - 1) / 2, x.div_ceil(2)]
                    };
                    let mut acc = 0.0;
                    for &yc in ys {
                        for &xc in xs {
                            acc += coarse[yc * ec + xc];
                        }
                    }
                    out[x] += acc / (ys.len() * xs.len()) as f64;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmg_multigrid::config::SmoothSteps;
    use gmg_multigrid::solver::setup_poisson;

    fn cfg() -> MgConfig {
        MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444())
    }

    /// The distributed solver computes exactly the shared-memory result,
    /// for several rank counts and ghost depths.
    #[test]
    fn matches_shared_memory_exactly() {
        let cfg = cfg();
        let (v0, f, _) = setup_poisson(&cfg);
        let mut reference = v0.clone();
        let mut hand = HandOpt::new(cfg.clone());
        hand.cycle(&mut reference, &f);
        hand.cycle(&mut reference, &f);

        for p in [1usize, 2, 3, 4] {
            for g in [1i64, 2, 4] {
                let mut dist = DistPoisson2D::new(cfg.clone(), p, g);
                let mut v = v0.clone();
                dist.cycle(&mut v, &f).unwrap();
                dist.cycle(&mut v, &f).unwrap();
                let dev = v
                    .iter()
                    .zip(&reference)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    dev < 1e-13,
                    "p={p} g={g}: deviation {dev} from shared-memory"
                );
            }
        }
    }

    /// W-cycles agree too (two agglomerated coarse visits).
    #[test]
    fn wcycle_matches() {
        let cfg = MgConfig::new(2, 63, CycleType::W, SmoothSteps::s444());
        let (v0, f, _) = setup_poisson(&cfg);
        let mut reference = v0.clone();
        HandOpt::new(cfg.clone()).cycle(&mut reference, &f);
        let mut dist = DistPoisson2D::new(cfg.clone(), 3, 2);
        let mut v = v0;
        dist.cycle(&mut v, &f).unwrap();
        let dev = v
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(dev < 1e-13, "deviation {dev}");
    }

    /// Communication aggregation: deeper ghosts ⇒ fewer messages but more
    /// redundant computation; total exchanged volume for smoothing is
    /// roughly preserved.
    #[test]
    fn aggregation_trades_messages_for_redundancy() {
        let cfg = cfg();
        let (v0, f, _) = setup_poisson(&cfg);
        let run = |g: i64| {
            let mut d = DistPoisson2D::new(cfg.clone(), 4, g);
            let mut v = v0.clone();
            d.cycle(&mut v, &f).unwrap();
            (d.stats(), d.redundant_points)
        };
        let (s1, r1) = run(1);
        let (s4, r4) = run(4);
        assert!(
            s4.messages < s1.messages,
            "depth 4 should send fewer messages: {} vs {}",
            s4.messages,
            s1.messages
        );
        assert!(r1 == 0, "depth 1 does no redundant smoothing");
        assert!(r4 > 0, "depth 4 must recompute halo rows");
    }

    /// Convergence is unaffected by distribution (it is the same math).
    #[test]
    fn converges_like_shared_memory() {
        let mut cfg = cfg();
        cfg.steps = SmoothSteps {
            pre: 3,
            coarse: 60,
            post: 3,
        };
        let (mut v, f, _) = setup_poisson(&cfg);
        let mut dist = DistPoisson2D::new(cfg.clone(), 4, 2);
        let n = cfg.n_at(cfg.levels - 1);
        let h = cfg.h_at(cfg.levels - 1);
        let r0 = gmg_multigrid::solver::residual_norm(2, n, h, &v, &f);
        for _ in 0..5 {
            dist.cycle(&mut v, &f).unwrap();
        }
        let r5 = gmg_multigrid::solver::residual_norm(2, n, h, &v, &f);
        assert!(r5 < r0 * 1e-3, "{r0} → {r5}");
    }

    /// Injected halo faults (drops + short reads) are recovered by retry:
    /// the cycle succeeds and its result is bitwise-identical to the
    /// fault-free run.
    #[test]
    fn halo_chaos_recovers_bitwise() {
        let cfg = cfg();
        let (v0, f, _) = setup_poisson(&cfg);
        let mut clean = v0.clone();
        DistPoisson2D::new(cfg.clone(), 3, 2)
            .cycle(&mut clean, &f)
            .unwrap();

        let mut dist = DistPoisson2D::new(cfg.clone(), 3, 2);
        dist.set_chaos(Some(
            ChaosOptions::new(42, 0.3).with_sites(polymg::chaos::SITE_HALO),
        ));
        let mut v = v0;
        dist.cycle(&mut v, &f)
            .expect("halo faults must be recovered");
        assert_eq!(v, clean, "recovered run must match fault-free bitwise");
        let snap = dist.fault_plan().snapshot();
        assert!(snap.total_fired() > 0, "this seed/rate must actually fire");
        assert_eq!(snap.total_fired(), snap.total_recovered());
    }
}
