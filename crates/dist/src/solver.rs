//! Distributed 2-D Poisson V-/W-cycle with communication aggregation.
//!
//! The finest level is decomposed across ranks ([`RankLayout`]); all
//! coarser levels are agglomerated onto rank 0 and solved by the
//! shared-memory `handopt` recursion (standard practice for small coarse
//! grids — the gather/scatter shows up in [`CommStats::collectives`]).
//!
//! Smoothing uses **deep ghost zones**: with ghost depth `g`, one exchange
//! provides enough halo for `g` Jacobi steps; step `s` of a batch computes
//! the owned rows extended by `g − 1 − s` rows into the halo (redundant
//! work), so after the batch the owned rows are exactly what a global sweep
//! would hold. This is Williams et al.'s communication aggregation, which
//! the paper identifies as "equivalent to overlapped tiling, but applied in
//! a distributed-memory parallelization setting" — depth 1 is the classic
//! exchange-every-step scheme; deeper halos trade redundant flops for
//! fewer, larger messages.

// Index-based loops here mirror the math (multi-slice stencil updates); clippy prefers iterators but the indices are the clearer notation.
#![allow(clippy::needless_range_loop)]

use crate::decomp::RankLayout;
use crate::halo::{exchange, CommStats, SubGrid};
use gmg_multigrid::config::{CycleType, MgConfig, SmootherKind};
use gmg_multigrid::handopt::HandOpt;

/// Distributed 2-D Poisson solver state.
pub struct DistPoisson2D {
    cfg: MgConfig,
    layout: RankLayout,
    ghost_depth: i64,
    /// Per-rank iterate / modulo partner / RHS at the finest level.
    u: Vec<SubGrid>,
    tmp: Vec<SubGrid>,
    rhs: Vec<SubGrid>,
    /// Agglomerated coarse-level solver (levels − 1 of the hierarchy).
    coarse: HandOpt,
    coarse_cfg: MgConfig,
    /// Dense coarse buffers on "rank 0".
    coarse_rhs: Vec<f64>,
    coarse_e: Vec<f64>,
    stats: CommStats,
    /// Redundant halo points computed by aggregated smoothing.
    pub redundant_points: usize,
}

impl DistPoisson2D {
    /// New solver: `p` ranks, ghost depth `g ≥ 1`.
    pub fn new(cfg: MgConfig, p: usize, ghost_depth: i64) -> Self {
        assert_eq!(cfg.ndims, 2, "distributed solver is 2-D");
        assert_eq!(
            cfg.smoother,
            SmootherKind::Jacobi,
            "deep-halo aggregation implemented for Jacobi"
        );
        assert!(cfg.levels >= 2, "need at least one coarse level");
        assert!(ghost_depth >= 1);
        let n = cfg.n_at(cfg.levels - 1);
        let layout = RankLayout::new(n, p);
        let owned = layout.owned.clone();
        let mk = || -> Vec<SubGrid> {
            owned
                .iter()
                .map(|&(lo, hi)| SubGrid::new(lo, hi, ghost_depth, n))
                .collect()
        };
        let mut coarse_cfg = cfg.clone();
        coarse_cfg.levels = cfg.levels - 1;
        coarse_cfg.n = cfg.n_at(cfg.levels - 2);
        let clen = coarse_cfg.alloc_len(coarse_cfg.levels - 1);
        DistPoisson2D {
            coarse: HandOpt::new(coarse_cfg.clone()),
            coarse_cfg,
            layout,
            ghost_depth,
            u: mk(),
            tmp: mk(),
            rhs: mk(),
            cfg,
            coarse_rhs: vec![0.0; clen],
            coarse_e: vec![0.0; clen],
            stats: CommStats::default(),
            redundant_points: 0,
        }
    }

    /// Accumulated communication statistics.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// One multigrid cycle: `v ← cycle(v, f)` on dense global buffers
    /// (scattered to ranks, gathered back — counted as collectives, as a
    /// real driver would only do once per solve, not per cycle; callers
    /// benchmarking communication should use the per-cycle deltas of
    /// [`Self::stats`] minus the scatter/gather of this convenience entry).
    pub fn cycle(&mut self, v: &mut [f64], f: &[f64]) {
        for (r, g) in self.u.iter_mut().enumerate() {
            let _ = r;
            g.load_owned(v);
        }
        for g in self.rhs.iter_mut() {
            g.load_owned(f);
        }
        self.stats.collectives += 2;
        // rhs halo: smoothing in the halo region needs rhs there too
        self.stats.add(exchange(&mut self.rhs, self.ghost_depth));

        let shape = self.cfg.cycle;
        self.run_cycle(shape);

        for g in &self.u {
            g.store_owned(v);
        }
        self.stats.collectives += 1;
    }

    fn run_cycle(&mut self, shape: CycleType) {
        let steps = self.cfg.steps;
        // pre-smoothing with aggregation
        self.smooth(steps.pre);
        // residual into tmp (owned rows; needs u halo 1)
        self.exchange_u(1);
        self.residual_into_tmp();
        // restrict to agglomerated coarse rhs (needs tmp halo 1)
        self.stats.add(exchange(&mut self.tmp, 1));
        self.gather_restrict();
        // coarse solve (rank 0): first visit from zero guess
        self.coarse_e.fill(0.0);
        let rhs = std::mem::take(&mut self.coarse_rhs);
        let mut e = std::mem::take(&mut self.coarse_e);
        self.coarse.cycle(&mut e, &rhs);
        if matches!(shape, CycleType::W | CycleType::F) {
            // second coarse visit, same semantics as the shared-memory code
            self.coarse.cycle(&mut e, &rhs);
        }
        self.coarse_rhs = rhs;
        self.coarse_e = e;
        // scatter + interpolate + correct
        self.scatter_interp_correct();
        // post-smoothing
        self.smooth(steps.post);
    }

    /// Aggregated smoothing: batches of up to `g` steps per exchange.
    fn smooth(&mut self, steps: usize) {
        let g = self.ghost_depth as usize;
        let mut done = 0usize;
        while done < steps {
            let batch = g.min(steps - done);
            self.exchange_u(batch as i64);
            self.smooth_batch(batch);
            done += batch;
        }
    }

    fn exchange_u(&mut self, depth: i64) {
        self.stats.add(exchange(&mut self.u, depth));
    }

    /// `batch` Jacobi steps with shrinking halos.
    fn smooth_batch(&mut self, batch: usize) {
        let n = self.cfg.n_at(self.cfg.levels - 1);
        let h = self.cfg.h_at(self.cfg.levels - 1);
        let w = self.cfg.omega * h * h / 4.0;
        let inv_h2 = 1.0 / (h * h);
        let e = (n + 2) as usize;
        let nranks = self.layout.num_ranks();
        for s in 0..batch {
            let shrink = (batch - 1 - s) as i64;
            for r in 0..nranks {
                let (lo, hi) = self.layout.rows(r);
                let ylo = (lo - shrink).max(1);
                let yhi = (hi + shrink).min(n);
                let src = &self.u[r];
                let dst = &mut self.tmp[r];
                for y in ylo..=yhi {
                    let up = src.row(y - 1);
                    let mid = src.row(y);
                    let dn = src.row(y + 1);
                    let rr = self.rhs[r].row(y);
                    let out = dst.row_mut(y);
                    for x in 1..=n as usize {
                        let a = (4.0 * mid[x] - mid[x - 1] - mid[x + 1] - up[x] - dn[x])
                            * inv_h2;
                        out[x] = mid[x] - w * (a - rr[x]);
                    }
                }
                self.redundant_points +=
                    ((yhi - ylo + 1) - (hi - lo + 1)).max(0) as usize * e;
            }
            for r in 0..nranks {
                std::mem::swap(&mut self.u[r], &mut self.tmp[r]);
            }
        }
    }

    /// `tmp ← rhs − A·u` on owned rows.
    fn residual_into_tmp(&mut self) {
        let n = self.cfg.n_at(self.cfg.levels - 1);
        let h = self.cfg.h_at(self.cfg.levels - 1);
        let inv_h2 = 1.0 / (h * h);
        for r in 0..self.layout.num_ranks() {
            let (lo, hi) = self.layout.rows(r);
            let src = &self.u[r];
            let rh = &self.rhs[r];
            let dst = &mut self.tmp[r];
            for y in lo..=hi {
                let up = src.row(y - 1);
                let mid = src.row(y);
                let dn = src.row(y + 1);
                let rr = rh.row(y);
                let out = dst.row_mut(y);
                for x in 1..=n as usize {
                    let a =
                        (4.0 * mid[x] - mid[x - 1] - mid[x + 1] - up[x] - dn[x]) * inv_h2;
                    out[x] = rr[x] - a;
                }
            }
        }
    }

    /// Full-weighting restriction of `tmp` into the rank-0 coarse RHS
    /// (gather collective).
    fn gather_restrict(&mut self) {
        let nc = self.coarse_cfg.n_at(self.coarse_cfg.levels - 1);
        let ec = (nc + 2) as usize;
        self.coarse_rhs.fill(0.0);
        for yc in 1..=nc {
            let yf = 2 * yc;
            let r = self.layout.rank_of(yf);
            let g = &self.tmp[r];
            let (um, mm, dm) = (g.row(yf - 1), g.row(yf), g.row(yf + 1));
            let out = &mut self.coarse_rhs[yc as usize * ec..(yc as usize + 1) * ec];
            for xc in 1..=nc as usize {
                let xf = 2 * xc;
                out[xc] = (um[xf - 1] + um[xf + 1] + dm[xf - 1] + dm[xf + 1]
                    + 2.0 * (um[xf] + dm[xf] + mm[xf - 1] + mm[xf + 1])
                    + 4.0 * mm[xf])
                    / 16.0;
            }
        }
        self.stats.collectives += 1;
        self.stats.doubles += (nc as usize) * ec;
    }

    /// Scatter the coarse correction and apply bilinear interp + correction
    /// on owned rows.
    fn scatter_interp_correct(&mut self) {
        let n = self.cfg.n_at(self.cfg.levels - 1);
        let nc = self.coarse_cfg.n_at(self.coarse_cfg.levels - 1);
        let ec = (nc + 2) as usize;
        let coarse = &self.coarse_e;
        self.stats.collectives += 1;
        for r in 0..self.layout.num_ranks() {
            let (lo, hi) = self.layout.rows(r);
            // a real scatter ships coarse rows ⌊(lo−1)/2⌋ … ⌈(hi+1)/2⌉
            self.stats.doubles +=
                (((hi + 1) / 2 + 1) - ((lo - 1) / 2) + 1).max(0) as usize * ec;
            let g = &mut self.u[r];
            for y in lo..=hi {
                let ys: &[usize] = &if y % 2 == 0 {
                    vec![(y / 2) as usize]
                } else {
                    vec![((y - 1) / 2) as usize, ((y + 1) / 2) as usize]
                };
                let out = g.row_mut(y);
                for x in 1..=n as usize {
                    let xs: &[usize] = &if x % 2 == 0 {
                        vec![x / 2]
                    } else {
                        vec![(x - 1) / 2, x.div_ceil(2)]
                    };
                    let mut acc = 0.0;
                    for &yc in ys {
                        for &xc in xs {
                            acc += coarse[yc * ec + xc];
                        }
                    }
                    out[x] += acc / (ys.len() * xs.len()) as f64;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmg_multigrid::config::SmoothSteps;
    use gmg_multigrid::solver::setup_poisson;

    fn cfg() -> MgConfig {
        MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444())
    }

    /// The distributed solver computes exactly the shared-memory result,
    /// for several rank counts and ghost depths.
    #[test]
    fn matches_shared_memory_exactly() {
        let cfg = cfg();
        let (v0, f, _) = setup_poisson(&cfg);
        let mut reference = v0.clone();
        let mut hand = HandOpt::new(cfg.clone());
        hand.cycle(&mut reference, &f);
        hand.cycle(&mut reference, &f);

        for p in [1usize, 2, 3, 4] {
            for g in [1i64, 2, 4] {
                let mut dist = DistPoisson2D::new(cfg.clone(), p, g);
                let mut v = v0.clone();
                dist.cycle(&mut v, &f);
                dist.cycle(&mut v, &f);
                let dev = v
                    .iter()
                    .zip(&reference)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                assert!(
                    dev < 1e-13,
                    "p={p} g={g}: deviation {dev} from shared-memory"
                );
            }
        }
    }

    /// W-cycles agree too (two agglomerated coarse visits).
    #[test]
    fn wcycle_matches() {
        let cfg = MgConfig::new(2, 63, CycleType::W, SmoothSteps::s444());
        let (v0, f, _) = setup_poisson(&cfg);
        let mut reference = v0.clone();
        HandOpt::new(cfg.clone()).cycle(&mut reference, &f);
        let mut dist = DistPoisson2D::new(cfg.clone(), 3, 2);
        let mut v = v0;
        dist.cycle(&mut v, &f);
        let dev = v
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(dev < 1e-13, "deviation {dev}");
    }

    /// Communication aggregation: deeper ghosts ⇒ fewer messages but more
    /// redundant computation; total exchanged volume for smoothing is
    /// roughly preserved.
    #[test]
    fn aggregation_trades_messages_for_redundancy() {
        let cfg = cfg();
        let (v0, f, _) = setup_poisson(&cfg);
        let run = |g: i64| {
            let mut d = DistPoisson2D::new(cfg.clone(), 4, g);
            let mut v = v0.clone();
            d.cycle(&mut v, &f);
            (d.stats(), d.redundant_points)
        };
        let (s1, r1) = run(1);
        let (s4, r4) = run(4);
        assert!(
            s4.messages < s1.messages,
            "depth 4 should send fewer messages: {} vs {}",
            s4.messages,
            s1.messages
        );
        assert!(r1 == 0, "depth 1 does no redundant smoothing");
        assert!(r4 > 0, "depth 4 must recompute halo rows");
    }

    /// Convergence is unaffected by distribution (it is the same math).
    #[test]
    fn converges_like_shared_memory() {
        let mut cfg = cfg();
        cfg.steps = SmoothSteps {
            pre: 3,
            coarse: 60,
            post: 3,
        };
        let (mut v, f, _) = setup_poisson(&cfg);
        let mut dist = DistPoisson2D::new(cfg.clone(), 4, 2);
        let n = cfg.n_at(cfg.levels - 1);
        let h = cfg.h_at(cfg.levels - 1);
        let r0 = gmg_multigrid::solver::residual_norm(2, n, h, &v, &f);
        for _ in 0..5 {
            dist.cycle(&mut v, &f);
        }
        let r5 = gmg_multigrid::solver::residual_norm(2, n, h, &v, &f);
        assert!(r5 < r0 * 1e-3, "{r0} → {r5}");
    }
}
