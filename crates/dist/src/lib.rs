//! # gmg-dist — simulated distributed-memory multigrid
//!
//! The paper's stated future work is "a distributed-memory backend for our
//! DSL" (§6), and its related-work section analyses Williams et al.'s
//! *communication aggregation*: "a deeper ghost zone is communicated and
//! redundant computation at the boundaries is performed to reduce
//! communication frequency […] equivalent to overlapped tiling, but applied
//! in a distributed-memory parallelization setting."
//!
//! This crate builds that setting as a faithful in-process simulation (per
//! the substitution rule in DESIGN.md — no cluster is available here):
//!
//! * [`decomp`] — 1-D rank decomposition of the outermost dimension;
//! * [`halo`] — per-rank subgrids with configurable ghost depth and an
//!   explicit exchange primitive that counts messages and bytes;
//! * [`solver`] — a distributed 2-D Poisson V-cycle: smoothing with
//!   depth-`g` ghost zones exchanges once every `g` steps and performs the
//!   shrinking-halo redundant computation in between (communication
//!   aggregation = overlapped tiling across ranks); coarse levels are
//!   agglomerated onto rank 0, the standard practice the gather/scatter
//!   traffic of which is also counted.
//!
//! Everything is verified against the shared-memory `handopt` solver:
//! Jacobi with deep halos computes *bitwise* the same iterates as a global
//! sweep, so the equivalence tests demand `== 0` deviation up to fp
//! associativity (we keep the same per-point expression order, so it is
//! exact).

pub mod decomp;
pub mod halo;
pub mod solver;

pub use decomp::RankLayout;
pub use halo::{exchange, exchange_traced, CommStats, SubGrid};
pub use solver::DistPoisson2D;
