//! 1-D rank decomposition of the outermost grid dimension.

/// Contiguous row ranges (1-based interior rows) assigned to each rank.
#[derive(Clone, Debug)]
pub struct RankLayout {
    /// Per rank: inclusive `(first_row, last_row)` of owned interior rows.
    pub owned: Vec<(i64, i64)>,
    /// Interior rows of the decomposed dimension.
    pub n: i64,
}

impl RankLayout {
    /// Split `n` interior rows across `p` ranks as evenly as possible
    /// (first `n % p` ranks get one extra row).
    pub fn new(n: i64, p: usize) -> Self {
        assert!(p >= 1 && n >= p as i64, "need at least one row per rank");
        let base = n / p as i64;
        let extra = (n % p as i64) as usize;
        let mut owned = Vec::with_capacity(p);
        let mut next = 1i64;
        for r in 0..p {
            let rows = base + i64::from(r < extra);
            owned.push((next, next + rows - 1));
            next += rows;
        }
        debug_assert_eq!(next, n + 1);
        RankLayout { owned, n }
    }

    /// Number of ranks.
    pub fn num_ranks(&self) -> usize {
        self.owned.len()
    }

    /// Which rank owns interior row `y`.
    pub fn rank_of(&self, y: i64) -> usize {
        assert!((1..=self.n).contains(&y));
        // ranks own contiguous, sorted, gap-free ranges covering 1..=n, so
        // the first rank whose upper bound reaches y is the owner
        self.owned.partition_point(|&(_, hi)| hi < y)
    }

    /// Rows owned by `rank`.
    pub fn rows(&self, rank: usize) -> (i64, i64) {
        self.owned[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split() {
        let l = RankLayout::new(12, 4);
        assert_eq!(l.owned, vec![(1, 3), (4, 6), (7, 9), (10, 12)]);
        assert_eq!(l.rank_of(1), 0);
        assert_eq!(l.rank_of(6), 1);
        assert_eq!(l.rank_of(12), 3);
    }

    #[test]
    fn uneven_split_front_loads() {
        let l = RankLayout::new(10, 3);
        assert_eq!(l.owned, vec![(1, 4), (5, 7), (8, 10)]);
        // covers every row exactly once
        for y in 1..=10 {
            let r = l.rank_of(y);
            let (lo, hi) = l.rows(r);
            assert!(lo <= y && y <= hi);
        }
    }

    #[test]
    fn single_rank_owns_all() {
        let l = RankLayout::new(7, 1);
        assert_eq!(l.owned, vec![(1, 7)]);
        assert_eq!(l.num_ranks(), 1);
    }

    #[test]
    #[should_panic(expected = "one row per rank")]
    fn too_many_ranks_panics() {
        let _ = RankLayout::new(3, 4);
    }
}
