//! Halo exchange with a ghost depth larger than what a rank actually owns.
//! The exchange must clamp to the owned rows — sending only what exists,
//! writing only inside the receiver's stored window, and leaving ghost rows
//! it cannot source (they belong to a *second* neighbour) untouched.

use gmg_dist::{exchange, SubGrid};

#[test]
fn depth_exceeding_owned_rows_clamps_to_owned() {
    let n = 6i64;
    let e = (n + 2) as usize;
    // Three ranks owning two rows each, ghost depth 3 > 2 owned rows.
    let mut grids = vec![
        SubGrid::new(1, 2, 3, n),
        SubGrid::new(3, 4, 3, n),
        SubGrid::new(5, 6, 3, n),
    ];
    for g in &mut grids {
        for y in g.lo..=g.hi {
            g.row_mut(y).fill(y as f64);
        }
    }

    let stats = exchange(&mut grids, 3);

    // Two interior boundaries, two messages each; only the 2 owned rows per
    // direction actually move even though depth 3 was requested.
    assert_eq!(stats.messages, 4);
    assert_eq!(stats.doubles, 8 * e);

    // The middle rank received both neighbours' full owned slabs...
    assert_eq!(grids[1].at(1, 1), 1.0);
    assert_eq!(grids[1].at(2, 1), 2.0);
    assert_eq!(grids[1].at(5, 1), 5.0);
    assert_eq!(grids[1].at(6, 1), 6.0);
    // ...but rank 0's depth-3 ghost row 5 belongs to rank 2 (a second
    // neighbour) and a single nearest-neighbour exchange cannot fill it.
    assert_eq!(grids[0].at(5, 1), 0.0);
    // Rank 1's lowest stored row is the global boundary row 0, which no
    // rank owns; it must stay at its Dirichlet value.
    assert_eq!(grids[1].first_row, 0);
    assert_eq!(grids[1].at(0, 1), 0.0);
}

#[test]
fn single_row_rank_exchanges_without_panicking() {
    let n = 6i64;
    let e = (n + 2) as usize;
    // Rank a owns a single row; depth 2 exceeds it in both directions.
    let mut grids = vec![SubGrid::new(1, 1, 2, n), SubGrid::new(2, 5, 2, n)];
    grids[0].row_mut(1).fill(1.0);
    for y in 2..=5 {
        grids[1].row_mut(y).fill(y as f64 * 10.0);
    }

    let stats = exchange(&mut grids, 2);

    // a → b: one owned row; b → a: two rows (a's window reaches row 3).
    assert_eq!(stats.messages, 2);
    assert_eq!(stats.doubles, 3 * e);
    assert_eq!(grids[1].at(1, 1), 1.0);
    assert_eq!(grids[0].at(2, 1), 20.0);
    assert_eq!(grids[0].at(3, 1), 30.0);
    assert_eq!(
        grids[0].last_row(),
        3,
        "window is clamped, row 4 not stored"
    );
}
