//! Minimal in-tree stand-in for the `proptest` crate.
//!
//! The build environment has no network access to a crate registry, so this
//! shim implements the subset of proptest used by the workspace's property
//! tests: the `proptest!` / `prop_assert*` / `prop_assume!` macros, range and
//! tuple strategies, `collection::vec`, `bool::ANY`, and
//! `ProptestConfig::with_cases`.
//!
//! Unlike real proptest there is no shrinking: generation is driven by a
//! deterministic splitmix64 stream seeded from the test name, so failures
//! reproduce exactly from run to run and the failing inputs are printed in
//! the panic message via the `prop_assert*` text.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name: stable per test, independent across tests.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod bool {
    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl crate::Strategy for Any {
        type Value = ::core::primitive::bool;
        fn generate(&self, rng: &mut crate::TestRng) -> Self::Value {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_excl: r.end,
            }
        }
    }

    // Unsuffixed literals like `1..40` default to i32; accept that too.
    impl From<Range<i32>> for SizeRange {
        fn from(r: Range<i32>) -> Self {
            assert!(0 <= r.start && r.start < r.end, "bad size range");
            SizeRange {
                lo: r.start as usize,
                hi_excl: r.end as usize,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi_excl - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Config / errors / runner
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
        }
    }
}

/// Drive one `#[test]` expanded by `proptest!`: run `cfg.cases` accepted
/// cases, skipping `prop_assume!` rejections (with an attempt cap so a
/// never-satisfiable assumption fails instead of spinning).
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut executed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = (config.cases as u64).saturating_mul(20).max(1000);
    while executed < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest shim: '{name}' rejected too many cases ({executed}/{} accepted)",
            config.cases
        );
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case failed ('{name}', case {executed}): {msg}")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (@fns ($config:expr)) => {};
    (@fns ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config = $config;
            $crate::run_cases(stringify!($name), &config, |rng| {
                $(let $arg = $crate::Strategy::generate(&($strategy), rng);)+
                let case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                case()
            });
        }
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(*left != *right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestCaseError, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(a in -5i64..5, b in 1usize..4, x in 0.0f64..1.0) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!((1..4).contains(&b));
            prop_assert!((0.0..1.0).contains(&x));
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec((0i64..10, 0i64..10), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn assume_rejects(n in 0i64..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn deterministic_stream() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
