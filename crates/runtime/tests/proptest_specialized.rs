//! Specialized-kernel equivalence fuzzing: every [`KernelImpl`] family must
//! produce *bitwise identical* results to the expression interpreter over
//! randomized extents, origins, ghost widths, boundaries, and coefficients.
//! (The specialized row kernels and the generic tap loop accumulate in the
//! same order, and the interpreter twin is built term-by-term in that same
//! order, so exact equality is the contract — no tolerance.)
//!
//! The lane-safe SIMD tier (PR 8) is held to the same contract: it
//! vectorizes *across* output points, so each lane still accumulates its
//! own point in generic tap order, and cache blocking of the unit-stride
//! dimension only re-orders which points are visited when — never the
//! arithmetic within one. Every case below therefore also runs
//! `KernelTier::LaneSafe` (unblocked and with a deliberately tiny block so
//! the blocked nests actually fire at test extents) and asserts exact
//! equality against the same interpreter twin.

use gmg_ir::expr::{Access, AxisAccess, Expr, Operand};
use gmg_ir::{LinearForm, Parity, ParityPattern, Tap};
use gmg_poly::{BoxDomain, Interval};
use gmg_runtime::kernel::{
    execute_stage, execute_stage_impl, execute_stage_sel, KernelInput, Space, SpaceMut,
};
use polymg::specialize::classify;
use polymg::{KernelBody, KernelCase, KernelImpl, KernelSel, KernelTier, StageKernel};
use proptest::prelude::*;

/// The interpreter twin of a linear kernel: the same cases, each rebuilt as
/// `bias + c₀·read₀ + c₁·read₁ + …` so `Expr::eval_at`'s left-associated
/// additions replay the tap loop's accumulation order exactly.
fn interpreter_twin(k: &StageKernel) -> StageKernel {
    StageKernel {
        cases: k
            .cases
            .iter()
            .map(|case| {
                let form = match &case.body {
                    KernelBody::Linear(f) => f,
                    KernelBody::Interpreted(_) => panic!("twin of an interpreted case"),
                };
                let mut expr = Expr::Const(form.bias);
                for tap in &form.taps {
                    expr = expr
                        + Expr::Const(tap.coeff) * Operand::Slot(tap.slot).read(tap.access.clone());
                }
                KernelCase {
                    pattern: case.pattern.clone(),
                    body: KernelBody::Interpreted(expr),
                }
            })
            .collect(),
    }
}

/// Deterministic pseudo-random fill.
fn fill(seed: u64, data: &mut [f64]) {
    for (i, v) in data.iter_mut().enumerate() {
        let h = gmg_grid::init::splitmix64(seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
        *v = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
}

/// Run `kernel` (specialized, tag from the classifier) and its interpreter
/// twin over `region`, both reading one input space, and assert bitwise
/// equality of the two output buffers.
#[allow(clippy::too_many_arguments)]
fn assert_twin_bitwise(
    kernel: &StageKernel,
    expect: KernelImpl,
    ndims: usize,
    region: &BoxDomain,
    in_origin: &[i64],
    in_extents: &[i64],
    out_origin: &[i64],
    out_extents: &[i64],
    boundary: f64,
    seed: u64,
) -> Result<(), TestCaseError> {
    let tag = classify(kernel, ndims);
    prop_assert_eq!(tag, expect, "classifier missed the shape");

    let in_len = in_extents.iter().product::<i64>() as usize;
    let out_len = out_extents.iter().product::<i64>() as usize;
    let mut input = vec![0.0; in_len];
    fill(seed, &mut input);

    let mut spec_buf = vec![0.0; out_len];
    {
        let mut out = SpaceMut {
            data: &mut spec_buf,
            origin: out_origin,
            extents: out_extents,
        };
        let ins = [KernelInput::Grid(Space {
            data: &input,
            origin: in_origin,
            extents: in_extents,
        })];
        execute_stage_impl(tag, kernel, region, &mut out, &ins, &[boundary]);
    }

    let twin = interpreter_twin(kernel);
    let mut interp_buf = vec![0.0; out_len];
    {
        let mut out = SpaceMut {
            data: &mut interp_buf,
            origin: out_origin,
            extents: out_extents,
        };
        let ins = [KernelInput::Grid(Space {
            data: &input,
            origin: in_origin,
            extents: in_extents,
        })];
        execute_stage(&twin, region, &mut out, &ins, &[boundary]);
    }

    for (i, (a, b)) in spec_buf.iter().zip(&interp_buf).enumerate() {
        prop_assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{:?} diverged from the interpreter at flat index {} ({} vs {})",
            tag,
            i,
            a,
            b
        );
    }

    // lane-safe SIMD tier: same exact-equality contract, unblocked and with
    // a tiny cache block (test extents are far below the production
    // UNIT_BLOCK_MIN, so only a tiny block exercises the blocked nests)
    for xblock in [0usize, 4] {
        let mut lane_buf = vec![0.0; out_len];
        {
            let mut out = SpaceMut {
                data: &mut lane_buf,
                origin: out_origin,
                extents: out_extents,
            };
            let ins = [KernelInput::Grid(Space {
                data: &input,
                origin: in_origin,
                extents: in_extents,
            })];
            let sel = KernelSel {
                impl_tag: tag,
                tier: KernelTier::LaneSafe,
                xblock,
            };
            execute_stage_sel(sel, kernel, region, &mut out, &ins, &[boundary]);
        }
        for (i, (a, b)) in lane_buf.iter().zip(&interp_buf).enumerate() {
            prop_assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{:?} lane-safe (xblock {}) diverged from the interpreter at flat index {} \
                 ({} vs {})",
                tag,
                xblock,
                i,
                a,
                b
            );
        }
    }
    Ok(())
}

fn unit_tap(offs: &[i64], coeff: f64) -> Tap {
    Tap {
        slot: 0,
        access: Access::offsets(offs),
        coeff,
        cfactor: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 2-D unit-stride stencils: cross (≤5-point) and box (≤9-point).
    #[test]
    fn stencil_2d_matches_interpreter(
        e in 6i64..14,
        g in 1i64..3,
        boxy in proptest::bool::ANY,
        coeffs in proptest::collection::vec(-1.0f64..1.0, 9),
        bias in -1.0f64..1.0,
        boundary in -1.0f64..1.0,
        margin in 0i64..2,
        seed in 0u64..1_000_000,
    ) {
        let offsets: &[[i64; 2]] = if boxy {
            &[[0, 0], [0, 1], [0, -1], [1, 0], [-1, 0], [1, 1], [1, -1], [-1, 1], [-1, -1]]
        } else {
            &[[0, 0], [0, 1], [0, -1], [1, 0], [-1, 0]]
        };
        let taps: Vec<Tap> = offsets
            .iter()
            .zip(&coeffs)
            .map(|(o, &c)| unit_tap(o, c))
            .collect();
        let kernel = StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(2),
                body: KernelBody::Linear(LinearForm { bias, taps }),
            }],
        };
        let region = BoxDomain::new(vec![
            Interval::new(g, e - 1 - g),
            Interval::new(g, e - 1 - g),
        ]);
        // output into a tight window whose origin is offset from the array's
        let oo = [g - margin.min(g), g - margin.min(g)];
        let oext = [e - 1 - g - oo[0] + 1, e - 1 - g - oo[1] + 1];
        let expect = if boxy { KernelImpl::Stencil2D9 } else { KernelImpl::Stencil2D5 };
        assert_twin_bitwise(
            &kernel, expect, 2, &region,
            &[0, 0], &[e, e], &oo, &oext, boundary, seed,
        )?;
    }

    /// 3-D unit-stride stencils: cross (≤7-point) and box (27-point).
    #[test]
    fn stencil_3d_matches_interpreter(
        e in 5i64..9,
        boxy in proptest::bool::ANY,
        coeffs in proptest::collection::vec(-1.0f64..1.0, 27),
        bias in -1.0f64..1.0,
        boundary in -1.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let mut offsets: Vec<[i64; 3]> = Vec::new();
        if boxy {
            for z in -1i64..=1 {
                for y in -1i64..=1 {
                    for x in -1i64..=1 {
                        offsets.push([z, y, x]);
                    }
                }
            }
        } else {
            offsets.extend([
                [0, 0, 0], [0, 0, 1], [0, 0, -1], [0, 1, 0], [0, -1, 0], [1, 0, 0], [-1, 0, 0],
            ]);
        }
        let taps: Vec<Tap> = offsets
            .iter()
            .zip(&coeffs)
            .map(|(o, &c)| unit_tap(o, c))
            .collect();
        let kernel = StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(3),
                body: KernelBody::Linear(LinearForm { bias, taps }),
            }],
        };
        let region = BoxDomain::interior(3, e - 2);
        let expect = if boxy { KernelImpl::Stencil3D27 } else { KernelImpl::Stencil3D7 };
        assert_twin_bitwise(
            &kernel, expect, 3, &region,
            &[0, 0, 0], &[e, e, e], &[0, 0, 0], &[e, e, e], boundary, seed,
        )?;
    }

    /// Stride-2 restriction reads (`in = 2·out + off`, |off| ≤ 2).
    #[test]
    fn restrict_matches_interpreter(
        n in 5i64..10,
        offs in proptest::collection::vec((-2i64..3, -2i64..3), 1..7),
        coeffs in proptest::collection::vec(-1.0f64..1.0, 7),
        bias in -1.0f64..1.0,
        boundary in -1.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let taps: Vec<Tap> = offs
            .iter()
            .zip(&coeffs)
            .map(|(&(dy, dx), &c)| Tap {
                slot: 0,
                access: Access(vec![AxisAccess::down(dy), AxisAccess::down(dx)]),
                coeff: c,
                cfactor: None,
            })
            .collect();
        let kernel = StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(2),
                body: KernelBody::Linear(LinearForm { bias, taps }),
            }],
        };
        // coarse region [1, n-2] reads fine coords 2·[1, n-2] ± 2 ⊆ [0, 2n-2]
        let region = BoxDomain::interior(2, n - 2);
        let fine = 2 * n;
        assert_twin_bitwise(
            &kernel, KernelImpl::Restrict, 2, &region,
            &[0, 0], &[fine, fine], &[0, 0], &[n, n], boundary, seed,
        )?;
    }

    /// Half-index interpolation reads (`in = (out + off) / 2`), executed as
    /// per-parity cases like the lowering emits them.
    #[test]
    fn interp_matches_interpreter(
        e in 8i64..16,
        coeffs in proptest::collection::vec(-1.0f64..1.0, 12),
        bias in -1.0f64..1.0,
        boundary in -1.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        // four parity cases (EE/EO/OE/OO), each up-sampling with the taps a
        // bilinear interpolation would use for that parity
        let par = [Parity::Even, Parity::Odd];
        let mut cases = Vec::new();
        let mut ci = 0usize;
        for &py in &par {
            for &px in &par {
                let dys: &[i64] = if py == Parity::Even { &[0] } else { &[-1, 1] };
                let dxs: &[i64] = if px == Parity::Even { &[0] } else { &[-1, 1] };
                let mut taps = Vec::new();
                for &dy in dys {
                    for &dx in dxs {
                        taps.push(Tap {
                            slot: 0,
                            access: Access(vec![AxisAccess::up(dy), AxisAccess::up(dx)]),
                            coeff: coeffs[ci % coeffs.len()],
                            cfactor: None,
                        });
                        ci += 1;
                    }
                }
                cases.push(KernelCase {
                    pattern: ParityPattern(vec![py, px]),
                    body: KernelBody::Linear(LinearForm { bias, taps }),
                });
            }
        }
        let kernel = StageKernel { cases };
        // fine region [1, e-2] reads coarse coords ((x ± 1) / 2) ⊆ [0, (e-1)/2]
        let region = BoxDomain::interior(2, e - 2);
        let coarse = e / 2 + 2;
        assert_twin_bitwise(
            &kernel, KernelImpl::Interp, 2, &region,
            &[0, 0], &[coarse, coarse], &[0, 0], &[e, e], boundary, seed,
        )?;
    }
}
