//! The ultimate codegen check: emit the Figure-8 C for a compiled plan,
//! build it with the system C compiler, run it, and compare the output grid
//! against the engine bit-for-bit (same expression order ⇒ identical fp).
//!
//! Skips silently when no `cc` is on PATH (CI containers without a C
//! toolchain).

use gmg_ir::expr::Operand as Op;
use gmg_ir::stencil::{restrict_full_weighting_2d, stencil_2d};
use gmg_ir::{ParamBindings, Pipeline, StepCount};
use gmg_runtime::Engine;
use polymg::{codegen, compile, PipelineOptions, Variant};
use std::io::Write as _;
use std::process::Command;

fn have_cc() -> bool {
    Command::new("cc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

fn five() -> Vec<Vec<f64>> {
    vec![
        vec![0.0, -1.0, 0.0],
        vec![-1.0, 4.0, -1.0],
        vec![0.0, -1.0, 0.0],
    ]
}

/// Two-level pipeline exercising smoother fusion, defect/restrict scaling,
/// interp parity cases and correction.
fn two_level(n: i64, nc: i64) -> Pipeline {
    let mut p = Pipeline::new("cgen");
    let v = p.input("V", 2, n, 1);
    let f = p.input("F", 2, n, 1);
    let jac = Op::State.at(&[0, 0])
        - 0.2 * (stencil_2d(Op::State, &five(), 1.0) - Op::Func(f).at(&[0, 0]));
    let pre = p.tstencil("pre", 2, n, 1, StepCount::Fixed(3), Some(v), jac);
    let d = p.function(
        "defect",
        2,
        n,
        1,
        Op::Func(f).at(&[0, 0]) - stencil_2d(Op::Func(pre), &five(), 1.0),
    );
    let r = p.restrict_fn(
        "restrict",
        2,
        nc,
        0,
        restrict_full_weighting_2d(Op::Func(d)),
    );
    let e = p.interp_fn("interp", 2, n, 1, r);
    let c = p.function(
        "correct",
        2,
        n,
        1,
        Op::Func(pre).at(&[0, 0]) + Op::Func(e).at(&[0, 0]),
    );
    p.mark_output(c);
    p
}

/// Compile the emitted C together with a main() that loads inputs from a
/// binary file and writes the output grid; run it; return the output grid.
fn run_c(c_src: &str, fn_name: &str, inputs: &[(&str, &[f64])], out_len: usize) -> Vec<f64> {
    let dir = std::env::temp_dir().join(format!("polymg_cgen_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let c_path = dir.join("gen.c");
    let bin_path = dir.join("gen.bin");
    let in_path = dir.join("input.raw");
    let out_path = dir.join("output.raw");

    // inputs concatenated in call order
    let mut blob: Vec<u8> = Vec::new();
    for (_, data) in inputs {
        for v in *data {
            blob.extend_from_slice(&v.to_le_bytes());
        }
    }
    std::fs::write(&in_path, &blob).unwrap();

    let mut main_src = String::new();
    main_src.push_str("#include <stdio.h>\n");
    main_src.push_str("int main(void) {\n");
    let mut args = Vec::new();
    for (name, data) in inputs {
        main_src.push_str(&format!("  static double {name}[{}];\n", data.len()));
        args.push((*name).to_string());
    }
    main_src.push_str(&format!("  static double OUT[{out_len}];\n"));
    main_src.push_str(&format!(
        "  FILE* fi = fopen(\"{}\", \"rb\");\n",
        in_path.display()
    ));
    for (name, data) in inputs {
        main_src.push_str(&format!(
            "  if (fread({name}, sizeof(double), {len}, fi) != {len}) return 2;\n",
            len = data.len()
        ));
    }
    main_src.push_str("  fclose(fi);\n");
    // the output parameter is the last external array; our pipelines bind
    // it by name, the C signature takes externals in array-id order
    main_src.push_str(&format!("  pipeline_{fn_name}("));
    main_src.push_str(&args.join(", "));
    main_src.push_str(", OUT);\n");
    main_src.push_str(&format!(
        "  FILE* fo = fopen(\"{}\", \"wb\");\n",
        out_path.display()
    ));
    main_src.push_str(&format!(
        "  fwrite(OUT, sizeof(double), {out_len}, fo); fclose(fo);\n"
    ));
    main_src.push_str("  return 0;\n}\n");

    let full = format!("{c_src}\n{main_src}");
    let mut fh = std::fs::File::create(&c_path).unwrap();
    fh.write_all(full.as_bytes()).unwrap();
    drop(fh);

    let cc = Command::new("cc")
        .args(["-O2", "-o"])
        .arg(&bin_path)
        .arg(&c_path)
        .arg("-lm")
        .output()
        .expect("cc failed to spawn");
    assert!(
        cc.status.success(),
        "cc failed:\n{}",
        String::from_utf8_lossy(&cc.stderr)
    );
    let run = Command::new(&bin_path).output().expect("run failed");
    assert!(run.status.success(), "generated binary crashed");

    let bytes = std::fs::read(&out_path).unwrap();
    assert_eq!(bytes.len(), out_len * 8);
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

fn check_variant(variant: Variant) {
    if !have_cc() {
        eprintln!("no cc on PATH; skipping C codegen test");
        return;
    }
    let n = 31i64;
    let nc = 15i64;
    let e = (n + 2) as usize;
    let p = two_level(n, nc);
    let mut opts = PipelineOptions::for_variant(variant, 2);
    opts.tile_sizes = vec![8, 16];
    let plan = compile(&p, &ParamBindings::new(), opts).unwrap();
    let c_src = codegen::emit_c(&plan);

    // deterministic inputs
    let mut vin = vec![0.0; e * e];
    let mut fin = vec![0.0; e * e];
    for y in 1..=n as usize {
        for x in 1..=n as usize {
            vin[y * e + x] = ((y * 13 + x * 7) % 9) as f64 * 0.25 - 1.0;
            fin[y * e + x] = ((y * 5 + x * 11) % 7) as f64 * 0.5 - 1.5;
        }
    }

    // engine result
    let mut engine = Engine::new(plan);
    let mut want = vec![0.0; e * e];
    engine
        .run(&[("V", &vin), ("F", &fin)], vec![("correct", &mut want)])
        .unwrap();

    // generated-C result
    let got = run_c(&c_src, "cgen", &[("V", &vin), ("F", &fin)], e * e);
    let mut max = 0.0f64;
    for (a, b) in got.iter().zip(&want) {
        max = max.max((a - b).abs());
    }
    assert!(
        max < 1e-12,
        "{}: generated C deviates from the engine by {max}",
        variant.label()
    );
}

#[test]
fn generated_c_matches_engine_naive() {
    check_variant(Variant::Naive);
}

#[test]
fn generated_c_matches_engine_opt() {
    check_variant(Variant::Opt);
}

#[test]
fn generated_c_matches_engine_opt_plus() {
    check_variant(Variant::OptPlus);
}

#[test]
fn generated_c_matches_engine_dtile() {
    check_variant(Variant::DtileOptPlus);
}

#[test]
fn generated_c_has_figure8_shape() {
    let p = two_level(31, 15);
    let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
    opts.tile_sizes = vec![8, 16];
    let plan = compile(&p, &ParamBindings::new(), opts).unwrap();
    let c = codegen::emit_c(&plan);
    // the Figure 8 landmarks
    assert!(c.contains("pool_allocate"));
    assert!(c.contains("pool_deallocate"));
    assert!(c.contains("#pragma omp parallel for schedule(static) collapse("));
    assert!(c.contains("#pragma ivdep"));
    assert!(c.contains("/* users :"));
    assert!(c.contains("double _buf_"));
    assert!(c.contains("MAX(") && c.contains("MIN("));
    assert!(c.contains("void pipeline_cgen(double* V, double* F, double* correct)"));
}
