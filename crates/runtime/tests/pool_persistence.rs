//! The execution backend must create at most one set of worker threads per
//! engine: workers spawn lazily on the first parallel region and are parked
//! and reused by every subsequent region, op, and cycle — never respawned.

use gmg_ir::expr::Operand;
use gmg_ir::stencil::stencil_2d;
use gmg_ir::{ParamBindings, Pipeline, StepCount};
use gmg_runtime::Engine;
use polymg::{compile, PipelineOptions, Variant};

fn smoother_pipeline() -> Pipeline {
    let n = 31i64;
    let mut p = Pipeline::new("persist");
    let v = p.input("V", 2, n, 1);
    let f = p.input("F", 2, n, 1);
    let w = vec![
        vec![0.0, 1.0, 0.0],
        vec![1.0, -4.0, 1.0],
        vec![0.0, 1.0, 0.0],
    ];
    let sm = p.tstencil(
        "sm",
        2,
        n,
        1,
        StepCount::Fixed(3),
        Some(v),
        Operand::State.at(&[0, 0])
            - 0.2 * (stencil_2d(Operand::State, &w, 1.0) - Operand::Func(f).at(&[0, 0])),
    );
    p.mark_output(sm);
    p
}

#[test]
fn engine_spawns_one_worker_set_across_runs() {
    let p = smoother_pipeline();
    let mut opts = PipelineOptions::for_variant(Variant::Opt, 2);
    opts.threads = 3;
    // several tiles per sweep so every run hits a real parallel region
    opts.tile_sizes = vec![8, 8];
    let plan = compile(&p, &ParamBindings::new(), opts).unwrap();
    let out_name = plan
        .graph
        .stages
        .iter()
        .find(|s| s.is_output)
        .unwrap()
        .name
        .clone();
    let mut engine = Engine::new(plan);

    assert_eq!(
        engine.thread_counters().workers_spawned,
        0,
        "workers must spawn lazily, not at engine construction"
    );

    let e = 33usize;
    let vin = vec![0.5; e * e];
    let fin = vec![0.25; e * e];
    let mut out = vec![0.0; e * e];

    let mut spawned_after_first = 0;
    let mut regions_prev = 0;
    for run in 0..5 {
        engine
            .run(&[("V", &vin), ("F", &fin)], vec![(&out_name, &mut out)])
            .unwrap();
        let c = engine.thread_counters();
        if run == 0 {
            spawned_after_first = c.workers_spawned;
            assert_eq!(
                spawned_after_first, 2,
                "threads=3 should spawn exactly threads-1 persistent workers"
            );
        } else {
            assert_eq!(
                c.workers_spawned, spawned_after_first,
                "run {run} respawned workers — the pool is not persistent"
            );
        }
        assert!(
            c.regions > regions_prev,
            "run {run} executed no parallel region through the pool"
        );
        regions_prev = c.regions;
    }
}
