//! The pooled allocator's contract (see `pool.rs`): recycled buffers carry
//! whatever the previous computation left in them, and the engine must fully
//! (re)initialize every intermediate before its first read. If any stage
//! relied on a freshly-zeroed buffer, running the same problem *after*
//! poisoning the pool with a different one would change the answer. We
//! demand bit-for-bit agreement.

use gmg_ir::expr::Operand as Op;
use gmg_ir::stencil::stencil_2d;
use gmg_ir::{ParamBindings, Pipeline, StepCount};
use gmg_runtime::Engine;
use polymg::{compile, PipelineOptions, Variant};

fn pipeline(n: i64) -> Pipeline {
    let mut p = Pipeline::new("pool-recycle");
    let five = vec![
        vec![0.0, -1.0, 0.0],
        vec![-1.0, 4.0, -1.0],
        vec![0.0, -1.0, 0.0],
    ];
    let vg = p.input("V", 2, n, 1);
    let fg = p.input("F", 2, n, 1);
    let sm = p.tstencil(
        "sm",
        2,
        n,
        1,
        StepCount::Fixed(4),
        Some(vg),
        Op::State.at(&[0, 0])
            - 0.8 * (stencil_2d(Op::State, &five, 1.0) - Op::Func(fg).at(&[0, 0])),
    );
    let out = p.function("out", 2, n, 1, Op::Func(sm).at(&[0, 0]) + 0.0);
    p.mark_output(out);
    p
}

fn fill(buf: &mut [f64], seed: u64) {
    for (i, v) in buf.iter_mut().enumerate() {
        let h = gmg_grid::init::splitmix64(seed ^ i as u64);
        *v = ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
    }
}

fn run_once(engine: &mut Engine, n: i64, seed: u64) -> Vec<f64> {
    let e = (n + 2) as usize;
    let len = e * e;
    let mut v = vec![0.0; len];
    let mut f = vec![0.0; len];
    fill(&mut v, seed);
    fill(&mut f, seed ^ 0x9e3779b97f4a7c15);
    let mut out = vec![0.0; len];
    engine
        .run(&[("V", &v), ("F", &f)], vec![("out", &mut out)])
        .unwrap();
    out
}

#[test]
fn recycled_buffers_are_reinitialized_before_first_read() {
    let n = 63i64;
    // (label, variant, force full arrays?, must observe pool recycling?).
    // The untiled single-stage-group config materialises every stage as a
    // pooled full array, so recycling is guaranteed; opt+ may fuse all
    // intermediates into scratchpads and is checked for correctness only.
    let configs = [
        ("untiled+pool", Variant::Opt, true, true),
        ("opt+ (pooled)", Variant::OptPlus, false, false),
    ];
    for (label, variant, force_arrays, require_hits) in configs {
        let mut opts = PipelineOptions::for_variant(variant, 2);
        opts.pooled_allocation = true;
        opts.tile_sizes = vec![16, 32];
        if force_arrays {
            opts.tiling = polymg::TilingMode::None;
            opts.group_limit = 1;
            opts.intra_group_reuse = false;
        }
        let plan = compile(&pipeline(n), &ParamBindings::new(), opts).unwrap();
        let mut engine = Engine::new(plan);

        let first = run_once(&mut engine, n, 1);
        // Poison the pool's free lists with a different problem's data.
        let _ = run_once(&mut engine, n, 2);
        let again = run_once(&mut engine, n, 1);

        let stats = engine.pool_stats();
        if require_hits {
            assert!(
                stats.hits > 0,
                "{label}: pool never recycled a buffer; the contract was not exercised"
            );
        }
        for (i, (a, b)) in first.iter().zip(&again).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{label}: cell {i} differs after pool recycling: {a} vs {b}"
            );
        }
    }
}
