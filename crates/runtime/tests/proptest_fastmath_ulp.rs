//! Fast-math tier differential fuzzing: the reassociating SIMD kernels
//! (`KernelTier::FastMath`) trade the generic accumulation order for two
//! partial sums over tap pairs (plus FMA contraction where the host has
//! it), so bitwise equality is off the table *by design*. What still holds
//! is a classical rounding-error bound: for a sum of `n` terms, any
//! accumulation order lands within `O(n·ε)·Σ|termⱼ|` of any other, where
//! the magnitude Σ|cⱼ·rⱼ| + |bias| is the condition-number scale of the
//! dot product. A plain ULP-of-the-result bound would be wrong here —
//! cancellation can make the result arbitrarily smaller than the terms
//! that produced it — so the tolerance is scaled per point by that
//! magnitude, computed through the same kernel machinery with every
//! coefficient, input, and boundary replaced by its absolute value.
//!
//! Each case runs the scalar-specialized tier and the fast-math tier
//! (unblocked and with a deliberately tiny cache block so the blocked
//! nests fire at test extents) over randomized shapes and asserts the
//! per-point difference stays under the magnitude-scaled bound.

use gmg_ir::expr::Access;
use gmg_ir::{LinearForm, ParityPattern, Tap};
use gmg_poly::{BoxDomain, Interval};
use gmg_runtime::kernel::{execute_stage_sel, KernelInput, Space, SpaceMut};
use polymg::specialize::classify;
use polymg::{KernelBody, KernelCase, KernelImpl, KernelSel, KernelTier, StageKernel};
use proptest::prelude::*;

/// The kernel with every coefficient and bias replaced by its absolute
/// value: run on |input| with |boundary| it computes Σ|cⱼ·rⱼ| + |bias| per
/// point — the magnitude scale of the tolerance.
fn abs_twin(k: &StageKernel) -> StageKernel {
    StageKernel {
        cases: k
            .cases
            .iter()
            .map(|case| {
                let form = match &case.body {
                    KernelBody::Linear(f) => f,
                    KernelBody::Interpreted(_) => panic!("abs twin of an interpreted case"),
                };
                KernelCase {
                    pattern: case.pattern.clone(),
                    body: KernelBody::Linear(LinearForm {
                        bias: form.bias.abs(),
                        taps: form
                            .taps
                            .iter()
                            .map(|t| Tap {
                                slot: t.slot,
                                access: t.access.clone(),
                                coeff: t.coeff.abs(),
                                cfactor: None,
                            })
                            .collect(),
                    }),
                }
            })
            .collect(),
    }
}

/// Deterministic pseudo-random fill (same generator as the bitwise suite).
fn fill(seed: u64, data: &mut [f64]) {
    for (i, v) in data.iter_mut().enumerate() {
        let h = gmg_grid::init::splitmix64(seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15));
        *v = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
}

/// Run one `(tier, xblock)` selection of `kernel` over `region` into a
/// fresh buffer.
#[allow(clippy::too_many_arguments)]
fn run_sel(
    sel: KernelSel,
    kernel: &StageKernel,
    region: &BoxDomain,
    input: &[f64],
    in_origin: &[i64],
    in_extents: &[i64],
    out_origin: &[i64],
    out_extents: &[i64],
    boundary: f64,
) -> Vec<f64> {
    let out_len = out_extents.iter().product::<i64>() as usize;
    let mut buf = vec![0.0; out_len];
    let mut out = SpaceMut {
        data: &mut buf,
        origin: out_origin,
        extents: out_extents,
    };
    let ins = [KernelInput::Grid(Space {
        data: input,
        origin: in_origin,
        extents: in_extents,
    })];
    execute_stage_sel(sel, kernel, region, &mut out, &ins, &[boundary]);
    buf
}

/// Run the scalar tier and the fast-math tier (xblock ∈ {0, tiny}) and
/// assert every point differs by at most `(2n+6)·ε` of the per-point term
/// magnitude — the reassociation slack of an `n`-term dot product, with
/// headroom for the magnitude pass's own rounding.
#[allow(clippy::too_many_arguments)]
fn assert_fastmath_within_bound(
    kernel: &StageKernel,
    expect: KernelImpl,
    ndims: usize,
    region: &BoxDomain,
    in_origin: &[i64],
    in_extents: &[i64],
    out_origin: &[i64],
    out_extents: &[i64],
    boundary: f64,
    seed: u64,
) -> Result<(), TestCaseError> {
    let tag = classify(kernel, ndims);
    prop_assert_eq!(tag, expect, "classifier missed the shape");

    let in_len = in_extents.iter().product::<i64>() as usize;
    let mut input = vec![0.0; in_len];
    fill(seed, &mut input);
    let abs_input: Vec<f64> = input.iter().map(|x| x.abs()).collect();

    let run = |sel: KernelSel, k: &StageKernel, inp: &[f64], bnd: f64| {
        run_sel(
            sel, k, region, inp, in_origin, in_extents, out_origin, out_extents, bnd,
        )
    };

    let scalar = run(KernelSel::scalar(tag), kernel, &input, boundary);
    let mag = run(
        KernelSel::scalar(tag),
        &abs_twin(kernel),
        &abs_input,
        boundary.abs(),
    );

    let ntaps = kernel
        .cases
        .iter()
        .map(|c| match &c.body {
            KernelBody::Linear(f) => f.taps.len(),
            KernelBody::Interpreted(_) => 0,
        })
        .max()
        .unwrap_or(0) as f64;
    let tol_scale = (2.0 * ntaps + 6.0) * f64::EPSILON;

    for xblock in [0usize, 4] {
        let sel = KernelSel {
            impl_tag: tag,
            tier: KernelTier::FastMath,
            xblock,
        };
        let fast = run(sel, kernel, &input, boundary);
        for (i, ((a, b), m)) in fast.iter().zip(&scalar).zip(&mag).enumerate() {
            let tol = tol_scale * m;
            prop_assert!(
                (a - b).abs() <= tol,
                "{:?} fast-math (xblock {}) drifted past the reassociation bound at flat \
                 index {}: |{} - {}| = {:e} > {:e} (magnitude {:e})",
                tag,
                xblock,
                i,
                a,
                b,
                (a - b).abs(),
                tol,
                m
            );
        }
    }
    Ok(())
}

fn unit_tap(offs: &[i64], coeff: f64) -> Tap {
    Tap {
        slot: 0,
        access: Access::offsets(offs),
        coeff,
        cfactor: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 2-D unit-stride stencils: cross (≤5-point) and box (≤9-point).
    #[test]
    fn fastmath_2d_within_ulp_bound(
        e in 6i64..14,
        g in 1i64..3,
        boxy in proptest::bool::ANY,
        coeffs in proptest::collection::vec(-1.0f64..1.0, 9),
        bias in -1.0f64..1.0,
        boundary in -1.0f64..1.0,
        margin in 0i64..2,
        seed in 0u64..1_000_000,
    ) {
        let offsets: &[[i64; 2]] = if boxy {
            &[[0, 0], [0, 1], [0, -1], [1, 0], [-1, 0], [1, 1], [1, -1], [-1, 1], [-1, -1]]
        } else {
            &[[0, 0], [0, 1], [0, -1], [1, 0], [-1, 0]]
        };
        let taps: Vec<Tap> = offsets
            .iter()
            .zip(&coeffs)
            .map(|(o, &c)| unit_tap(o, c))
            .collect();
        let kernel = StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(2),
                body: KernelBody::Linear(LinearForm { bias, taps }),
            }],
        };
        let region = BoxDomain::new(vec![
            Interval::new(g, e - 1 - g),
            Interval::new(g, e - 1 - g),
        ]);
        let oo = [g - margin.min(g), g - margin.min(g)];
        let oext = [e - 1 - g - oo[0] + 1, e - 1 - g - oo[1] + 1];
        let expect = if boxy { KernelImpl::Stencil2D9 } else { KernelImpl::Stencil2D5 };
        assert_fastmath_within_bound(
            &kernel, expect, 2, &region,
            &[0, 0], &[e, e], &oo, &oext, boundary, seed,
        )?;
    }

    /// 3-D unit-stride stencils: cross (≤7-point) and box (27-point) — the
    /// 27-term sum is where reassociation slack is widest.
    #[test]
    fn fastmath_3d_within_ulp_bound(
        e in 5i64..9,
        boxy in proptest::bool::ANY,
        coeffs in proptest::collection::vec(-1.0f64..1.0, 27),
        bias in -1.0f64..1.0,
        boundary in -1.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let mut offsets: Vec<[i64; 3]> = Vec::new();
        if boxy {
            for z in -1i64..=1 {
                for y in -1i64..=1 {
                    for x in -1i64..=1 {
                        offsets.push([z, y, x]);
                    }
                }
            }
        } else {
            offsets.extend([
                [0, 0, 0], [0, 0, 1], [0, 0, -1], [0, 1, 0], [0, -1, 0], [1, 0, 0], [-1, 0, 0],
            ]);
        }
        let taps: Vec<Tap> = offsets
            .iter()
            .zip(&coeffs)
            .map(|(o, &c)| unit_tap(o, c))
            .collect();
        let kernel = StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(3),
                body: KernelBody::Linear(LinearForm { bias, taps }),
            }],
        };
        let region = BoxDomain::interior(3, e - 2);
        let expect = if boxy { KernelImpl::Stencil3D27 } else { KernelImpl::Stencil3D7 };
        assert_fastmath_within_bound(
            &kernel, expect, 3, &region,
            &[0, 0, 0], &[e, e, e], &[0, 0, 0], &[e, e, e], boundary, seed,
        )?;
    }

    /// Adversarially cancelling 2-D stencils: paired ±c coefficients make
    /// the true result near zero while the term magnitude stays O(1) —
    /// exactly the case where a result-relative ULP bound would be
    /// vacuous-or-wrong and the magnitude-scaled bound must still hold.
    #[test]
    fn fastmath_cancellation_within_ulp_bound(
        e in 6i64..12,
        c in 0.5f64..1.0,
        boundary in -1.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let offsets: [[i64; 2]; 9] = [
            [0, 0], [0, 1], [0, -1], [1, 0], [-1, 0], [1, 1], [1, -1], [-1, 1], [-1, -1],
        ];
        // center 0, four +c, four -c: smooth inputs cancel almost exactly
        let coeffs = [0.0, c, -c, c, -c, c, -c, c, -c];
        let taps: Vec<Tap> = offsets
            .iter()
            .zip(coeffs)
            .map(|(o, c)| unit_tap(o, c))
            .collect();
        let kernel = StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(2),
                body: KernelBody::Linear(LinearForm { bias: 0.0, taps }),
            }],
        };
        let region = BoxDomain::interior(2, e - 2);
        assert_fastmath_within_bound(
            &kernel, KernelImpl::Stencil2D9, 2, &region,
            &[0, 0], &[e, e], &[0, 0], &[e, e], boundary, seed,
        )?;
    }
}
