//! Chaos satellite: injected pool/arena allocation failure must degrade
//! gracefully — counted fallback mallocs, no leaked pool slots, and a
//! recovered run bitwise-identical to the fault-free one (the engine
//! re-initialises every buffer it reads, so where a buffer came from can
//! never matter).

use gmg_ir::expr::Operand as Op;
use gmg_ir::stencil::stencil_2d;
use gmg_ir::{ParamBindings, Pipeline, StepCount};
use gmg_runtime::Engine;
use polymg::chaos::{SITE_ARENA, SITE_POOL};
use polymg::schedule::ExecOp;
use polymg::{compile, ChaosOptions, PipelineOptions, Variant};

fn pipeline(n: i64) -> Pipeline {
    let mut p = Pipeline::new("chaos-pool");
    let five = vec![
        vec![0.0, -1.0, 0.0],
        vec![-1.0, 4.0, -1.0],
        vec![0.0, -1.0, 0.0],
    ];
    let vg = p.input("V", 2, n, 1);
    let fg = p.input("F", 2, n, 1);
    let sm = p.tstencil(
        "sm",
        2,
        n,
        1,
        StepCount::Fixed(4),
        Some(vg),
        Op::State.at(&[0, 0])
            - 0.8 * (stencil_2d(Op::State, &five, 1.0) - Op::Func(fg).at(&[0, 0])),
    );
    let out = p.function("out", 2, n, 1, Op::Func(sm).at(&[0, 0]) + 0.0);
    p.mark_output(out);
    p
}

fn run_once(engine: &mut Engine, n: i64, out_name: &str) -> Vec<f64> {
    let e = (n + 2) as usize;
    let v = vec![0.5; e * e];
    let f = vec![0.25; e * e];
    let mut out = vec![0.0; e * e];
    engine
        .run(&[("V", &v), ("F", &f)], vec![(out_name, &mut out)])
        .expect("run failed");
    out
}

#[test]
fn injected_pool_faults_recover_bitwise_and_leak_nothing() {
    let n = 31i64;
    let mut opts = PipelineOptions::for_variant(Variant::Opt, 2);
    opts.pooled_allocation = true;
    // untiled single-stage groups materialise every stage as a pooled full
    // array, guaranteeing PoolAlloc ops (same trick as pool_recycling.rs)
    opts.tiling = polymg::TilingMode::None;
    opts.group_limit = 1;
    opts.intra_group_reuse = false;
    let plan = compile(&pipeline(n), &ParamBindings::new(), opts).unwrap();
    let out_name = plan
        .graph
        .stages
        .iter()
        .find(|s| s.is_output)
        .unwrap()
        .name
        .clone();
    let mut engine = Engine::new(plan);
    assert!(
        engine
            .program()
            .ops
            .iter()
            .any(|op| matches!(op, ExecOp::PoolAlloc { .. })),
        "test premise: this plan must use the pooled allocator"
    );

    // warm, fault-free reference
    let reference = run_once(&mut engine, n, &out_name);
    let clean = engine.pool_stats();
    assert_eq!(
        clean.live_bytes, 0,
        "fault-free run must return all buffers"
    );
    assert_eq!(clean.fallback_fresh, 0);

    // every pool/arena allocation fails over to the degraded path
    engine.set_chaos(Some(
        ChaosOptions::new(5, 1.0).with_sites(SITE_POOL | SITE_ARENA),
    ));
    let faulted = run_once(&mut engine, n, &out_name);
    assert_eq!(
        faulted, reference,
        "recovered chaos run must be bitwise-identical to the fault-free run"
    );
    let stats = engine.pool_stats();
    assert!(
        stats.fallback_fresh > 0,
        "rate 1.0 must force the fallback path at least once"
    );
    assert_eq!(
        stats.live_bytes, 0,
        "fallback buffers must be returned to the pool like any other (no leaked slots)"
    );
    assert_eq!(stats.hits, clean.hits, "chaos run must not fake pool hits");
    let snap = engine.chaos_stats();
    assert!(snap.total_fired() > 0);
    assert_eq!(
        snap.total_fired(),
        snap.total_recovered(),
        "pool/arena faults all have a recovery policy"
    );

    // disarmed again: identical output, pool warm (fallback buffers are
    // now free-list citizens, so nothing new is allocated)
    engine.set_chaos(None);
    let allocated_before = engine.pool_stats().allocated_bytes;
    let after = run_once(&mut engine, n, &out_name);
    assert_eq!(after, reference);
    let post = engine.pool_stats();
    assert_eq!(post.live_bytes, 0);
    assert_eq!(
        post.allocated_bytes, allocated_before,
        "a warm pool (grown by recovered fallback buffers) must serve the whole run"
    );
}
