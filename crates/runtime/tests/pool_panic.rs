//! Chaos satellite: a worker panic inside the persistent pool must neither
//! deadlock nor strand workers. The panic is contained to the op (region
//! poisoning), surfaces as [`ExecError::WorkerPanicked`] from
//! [`Engine::run`], and the same engine — same worker set, same buffer
//! pool — must produce correct results on the next, fault-free run.

use gmg_ir::expr::Operand;
use gmg_ir::stencil::stencil_2d;
use gmg_ir::{ParamBindings, Pipeline, StepCount};
use gmg_runtime::{Engine, ExecError};
use polymg::chaos::SITE_PANIC;
use polymg::{compile, ChaosOptions, PipelineOptions, Variant};

fn smoother_pipeline() -> Pipeline {
    let n = 31i64;
    let mut p = Pipeline::new("panic-pool");
    let v = p.input("V", 2, n, 1);
    let f = p.input("F", 2, n, 1);
    let w = vec![
        vec![0.0, 1.0, 0.0],
        vec![1.0, -4.0, 1.0],
        vec![0.0, 1.0, 0.0],
    ];
    let sm = p.tstencil(
        "sm",
        2,
        n,
        1,
        StepCount::Fixed(3),
        Some(v),
        Operand::State.at(&[0, 0])
            - 0.2 * (stencil_2d(Operand::State, &w, 1.0) - Operand::Func(f).at(&[0, 0])),
    );
    p.mark_output(sm);
    p
}

fn opts() -> PipelineOptions {
    let mut o = PipelineOptions::for_variant(Variant::Opt, 2);
    o.threads = 3;
    // several tiles per sweep so every run hits a real parallel region
    o.tile_sizes = vec![8, 8];
    o
}

fn run_once(engine: &mut Engine, out_name: &str) -> Result<Vec<f64>, ExecError> {
    let e = 33usize;
    let v = vec![0.5; e * e];
    let f = vec![0.25; e * e];
    let mut out = vec![0.0; e * e];
    engine.run(&[("V", &v), ("F", &f)], vec![(out_name, &mut out)])?;
    Ok(out)
}

#[test]
fn worker_panic_is_contained_and_pool_stays_usable() {
    let plan = compile(&smoother_pipeline(), &ParamBindings::new(), opts()).unwrap();
    let out_name = plan
        .graph
        .stages
        .iter()
        .find(|s| s.is_output)
        .unwrap()
        .name
        .clone();

    // fault-free reference from an independent engine
    let mut ref_engine = Engine::new(plan.clone());
    let reference = run_once(&mut ref_engine, &out_name).unwrap();

    let mut engine = Engine::new(plan);
    let clean = run_once(&mut engine, &out_name).unwrap();
    assert_eq!(clean, reference);
    let workers_before = engine.thread_counters().workers_spawned;
    assert_eq!(
        workers_before, 2,
        "threads=3 should have spawned exactly threads-1 persistent workers"
    );

    // every parallel item panics; the run must return a typed error, not
    // deadlock and not unwind through Engine::run
    engine.set_chaos(Some(ChaosOptions::new(11, 1.0).with_sites(SITE_PANIC)));
    let err = run_once(&mut engine, &out_name)
        .expect_err("an injected worker panic must surface as an error");
    assert!(
        matches!(err, ExecError::WorkerPanicked { .. }),
        "expected WorkerPanicked, got: {err}"
    );
    assert_eq!(
        engine.thread_counters().workers_spawned,
        workers_before,
        "the panic must not kill or respawn pool workers"
    );
    let snap = engine.chaos_stats();
    assert!(snap.total_fired() > 0, "the panic site must have fired");

    // disarmed: the very same engine (workers, pool) computes the correct
    // result again — nothing was deadlocked, stranded, or poisoned for good
    engine.set_chaos(None);
    let regions_before = engine.thread_counters().regions;
    let recovered = run_once(&mut engine, &out_name).expect("engine must stay usable");
    assert_eq!(
        recovered, reference,
        "post-panic run must be bitwise-identical to the fault-free result"
    );
    let counters = engine.thread_counters();
    assert_eq!(
        counters.workers_spawned, workers_before,
        "recovery must reuse the existing worker set"
    );
    assert!(
        counters.regions > regions_before,
        "the recovery run must have executed real parallel regions"
    );
    assert_eq!(engine.pool_stats().live_bytes, 0, "no pool slot leaked");
}
