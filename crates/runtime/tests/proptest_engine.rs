//! Engine fuzzing: randomised pipelines (random stencil weights, step
//! counts, tile sizes, group limits, variants) executed by the engine must
//! match the reference interpreter bit-for-bit up to fp round-off.

use gmg_ir::expr::Operand;
use gmg_ir::stencil::{restrict_full_weighting_2d, stencil_2d};
use gmg_ir::{FuncId, ParamBindings, Pipeline, StepCount};
use gmg_runtime::interp::run_reference;
use gmg_runtime::Engine;
use polymg::{compile, PipelineOptions, Variant};
use proptest::prelude::*;

fn build(weights: &[Vec<f64>], steps: usize, with_restrict: bool, with_interp: bool) -> Pipeline {
    let n = 15i64;
    let nc = 7i64;
    let mut p = Pipeline::new("fuzz");
    let v = p.input("V", 2, n, 1);
    let f = p.input("F", 2, n, 1);
    let mut last: FuncId = if steps > 0 {
        p.tstencil(
            "sm",
            2,
            n,
            1,
            StepCount::Fixed(steps),
            Some(v),
            Operand::State.at(&[0, 0])
                - 0.1 * (stencil_2d(Operand::State, weights, 1.0) - Operand::Func(f).at(&[0, 0])),
        )
    } else {
        p.function(
            "pw",
            2,
            n,
            1,
            2.0 * Operand::Func(v).at(&[0, 0]) - Operand::Func(f).at(&[0, 0]),
        )
    };
    if with_restrict {
        let r = p.restrict_fn(
            "r",
            2,
            nc,
            0,
            restrict_full_weighting_2d(Operand::Func(last)),
        );
        last = if with_interp {
            let e = p.interp_fn("e", 2, n, 1, r);
            p.function(
                "c",
                2,
                n,
                1,
                Operand::Func(e).at(&[0, 0]) + 0.5 * Operand::Func(f).at(&[0, 0]),
            )
        } else {
            r
        };
    }
    p.mark_output(last);
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn engine_matches_interpreter(
        w in proptest::collection::vec(
            proptest::collection::vec(-1.0f64..1.0, 3), 3),
        steps in 0usize..4,
        with_restrict in proptest::bool::ANY,
        with_interp in proptest::bool::ANY,
        ty in 0usize..3,
        tx in 0usize..3,
        gl in 1usize..8,
        variant in 0usize..4,
        seed in 0u64..1000,
    ) {
        let variant = Variant::all()[variant];
        let p = build(&w, steps, with_restrict, with_interp);
        let mut opts = PipelineOptions::for_variant(variant, 2);
        opts.tile_sizes = vec![4 << ty, 4 << tx];
        opts.group_limit = gl;
        opts.threads = 2;
        let plan = compile(&p, &ParamBindings::new(), opts).unwrap();
        let graph = plan.graph.clone();
        let out_name = graph
            .stages
            .iter()
            .find(|s| s.is_output)
            .unwrap()
            .name
            .clone();

        let e = 17usize;
        let mut vin = vec![0.0; e * e];
        let mut fin = vec![0.0; e * e];
        for y in 1..16 {
            for x in 1..16 {
                let h1 = gmg_grid::init::splitmix64(seed ^ ((y as u64) << 32) ^ x as u64);
                let h2 = gmg_grid::init::splitmix64(!seed ^ ((x as u64) << 32) ^ y as u64);
                vin[y * e + x] = (h1 >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
                fin[y * e + x] = (h2 >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            }
        }

        let mut engine = Engine::new(plan);
        let out_len = if with_restrict && !with_interp {
            9 * 9
        } else {
            e * e
        };
        let mut got = vec![0.0; out_len];
        engine
            .run(&[("V", &vin), ("F", &fin)], vec![(&out_name, &mut got)])
            .unwrap();

        let reference = run_reference(&graph, &[("V", &vin), ("F", &fin)]);
        let want = &reference[&out_name];
        let mut max = 0.0f64;
        for (a, b) in got.iter().zip(want) {
            max = max.max((a - b).abs());
        }
        prop_assert!(max < 1e-12, "deviation {} for {:?}", max, variant);
    }
}
