//! Engine ↔ reference-interpreter equivalence on small pipelines, across
//! every optimizer variant. These are the first end-to-end checks of the
//! whole stack: DSL → compile → plan → parallel execution.

use gmg_ir::expr::Operand as Op;
use gmg_ir::stencil::{
    restrict_full_weighting_2d, restrict_full_weighting_3d, stencil_2d, stencil_3d,
};
use gmg_ir::{ParamBindings, Pipeline, StepCount};
use gmg_runtime::interp::run_reference;
use gmg_runtime::Engine;
use polymg::{compile, PipelineOptions, Variant};

fn five() -> Vec<Vec<f64>> {
    vec![
        vec![0.0, -1.0, 0.0],
        vec![-1.0, 4.0, -1.0],
        vec![0.0, -1.0, 0.0],
    ]
}

fn seven() -> Vec<Vec<Vec<f64>>> {
    let mut w = vec![vec![vec![0.0; 3]; 3]; 3];
    w[1][1][1] = 6.0;
    for (z, y, x) in [
        (0, 1, 1),
        (2, 1, 1),
        (1, 0, 1),
        (1, 2, 1),
        (1, 1, 0),
        (1, 1, 2),
    ] {
        w[z][y][x] = -1.0;
    }
    w
}

/// Deterministic input fill.
fn fill(buf: &mut [f64], seed: u64) {
    for (i, v) in buf.iter_mut().enumerate() {
        let h = gmg_grid::init::splitmix64(seed ^ i as u64);
        *v = ((h >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0;
    }
}

/// Zero the ghost ring of a dense 2-D buffer.
fn zero_ghost_2d(buf: &mut [f64], e: usize) {
    for x in 0..e {
        buf[x] = 0.0;
        buf[(e - 1) * e + x] = 0.0;
        buf[x * e] = 0.0;
        buf[x * e + e - 1] = 0.0;
    }
}

fn zero_ghost_3d(buf: &mut [f64], e: usize) {
    for z in 0..e {
        for y in 0..e {
            for x in 0..e {
                if z == 0 || z == e - 1 || y == 0 || y == e - 1 || x == 0 || x == e - 1 {
                    buf[(z * e + y) * e + x] = 0.0;
                }
            }
        }
    }
}

/// Compare engine output against the interpreter for one pipeline/variant.
fn check_equivalence(
    pipeline: &Pipeline,
    mut opts: PipelineOptions,
    inputs: &[(&str, &[f64])],
    output_name: &str,
    out_len: usize,
) {
    opts.threads = 2; // exercise the parallel paths even on 1 core
    let plan = compile(pipeline, &ParamBindings::new(), opts).unwrap();
    let graph = plan.graph.clone();
    let mut engine = Engine::new(plan);
    let mut got = vec![0.0; out_len];
    engine.run(inputs, vec![(output_name, &mut got)]).unwrap();

    let reference = run_reference(&graph, inputs);
    let want = &reference[output_name];
    let mut max_err: f64 = 0.0;
    for (a, b) in got.iter().zip(want) {
        max_err = max_err.max((a - b).abs());
    }
    assert!(
        max_err < 1e-12,
        "engine deviates from reference by {max_err}"
    );
}

fn check_all_variants(
    pipeline: &Pipeline,
    ndims: usize,
    tiles: Vec<i64>,
    inputs: &[(&str, &[f64])],
    output_name: &str,
    out_len: usize,
) {
    for v in Variant::all() {
        let mut o = PipelineOptions::for_variant(v, ndims);
        o.tile_sizes = tiles.clone();
        check_equivalence(pipeline, o, inputs, output_name, out_len);
    }
}

#[test]
fn smoother_chain_2d() {
    let n = 31i64;
    let e = (n + 2) as usize;
    let mut p = Pipeline::new("sm2d");
    let v = p.input("V", 2, n, 1);
    let f = p.input("F", 2, n, 1);
    let sm = p.tstencil(
        "sm",
        2,
        n,
        1,
        StepCount::Fixed(4),
        Some(v),
        Op::State.at(&[0, 0])
            - 0.2 * (stencil_2d(Op::State, &five(), 1.0) - Op::Func(f).at(&[0, 0])),
    );
    p.mark_output(sm);
    let mut vin = vec![0.0; e * e];
    let mut fin = vec![0.0; e * e];
    fill(&mut vin, 1);
    fill(&mut fin, 2);
    zero_ghost_2d(&mut vin, e);
    zero_ghost_2d(&mut fin, e);
    check_all_variants(
        &p,
        2,
        vec![8, 16],
        &[("V", &vin), ("F", &fin)],
        "sm.s3",
        e * e,
    );
}

#[test]
fn two_level_fragment_2d() {
    // pre-smooth → defect → restrict → (zero-state coarse smooth) → interp
    // → correct → post-smooth: exercises scale changes, zero-state folding,
    // parity kernels and live-out/scratch duality.
    let n = 31i64;
    let nc = 15i64;
    let e = (n + 2) as usize;
    let mut p = Pipeline::new("frag2d");
    let v = p.input("V", 2, n, 1);
    let f = p.input("F", 2, n, 1);
    let jac = |state: Op, fop: Op| {
        state.at(&[0, 0]) - 0.2 * (stencil_2d(state, &five(), 1.0) - fop.at(&[0, 0]))
    };
    let pre = p.tstencil(
        "pre",
        2,
        n,
        1,
        StepCount::Fixed(2),
        Some(v),
        jac(Op::State, Op::Func(f)),
    );
    let d = p.function(
        "defect",
        2,
        n,
        1,
        Op::Func(f).at(&[0, 0]) - stencil_2d(Op::Func(pre), &five(), 1.0),
    );
    let r = p.restrict_fn(
        "restrict",
        2,
        nc,
        0,
        restrict_full_weighting_2d(Op::Func(d)),
    );
    let cs = p.tstencil(
        "coarse",
        2,
        nc,
        0,
        StepCount::Fixed(3),
        None,
        jac(Op::State, Op::Func(r)),
    );
    let it = p.interp_fn("interp", 2, n, 1, cs);
    let c = p.function(
        "correct",
        2,
        n,
        1,
        Op::Func(pre).at(&[0, 0]) + Op::Func(it).at(&[0, 0]),
    );
    let post = p.tstencil(
        "post",
        2,
        n,
        1,
        StepCount::Fixed(2),
        Some(c),
        jac(Op::State, Op::Func(f)),
    );
    p.mark_output(post);

    let mut vin = vec![0.0; e * e];
    let mut fin = vec![0.0; e * e];
    fill(&mut vin, 3);
    fill(&mut fin, 4);
    zero_ghost_2d(&mut vin, e);
    zero_ghost_2d(&mut fin, e);
    check_all_variants(
        &p,
        2,
        vec![8, 8],
        &[("V", &vin), ("F", &fin)],
        "post.s1",
        e * e,
    );
}

#[test]
fn smoother_chain_3d() {
    let n = 15i64;
    let e = (n + 2) as usize;
    let mut p = Pipeline::new("sm3d");
    let v = p.input("V", 3, n, 1);
    let f = p.input("F", 3, n, 1);
    let sm = p.tstencil(
        "sm",
        3,
        n,
        1,
        StepCount::Fixed(3),
        Some(v),
        Op::State.at(&[0, 0, 0])
            - 0.15 * (stencil_3d(Op::State, &seven(), 1.0) - Op::Func(f).at(&[0, 0, 0])),
    );
    p.mark_output(sm);
    let mut vin = vec![0.0; e * e * e];
    let mut fin = vec![0.0; e * e * e];
    fill(&mut vin, 5);
    fill(&mut fin, 6);
    zero_ghost_3d(&mut vin, e);
    zero_ghost_3d(&mut fin, e);
    check_all_variants(
        &p,
        3,
        vec![4, 8, 8],
        &[("V", &vin), ("F", &fin)],
        "sm.s2",
        e * e * e,
    );
}

#[test]
fn restrict_interp_3d() {
    let n = 15i64;
    let nc = 7i64;
    let e = (n + 2) as usize;
    let mut p = Pipeline::new("ri3d");
    let v = p.input("V", 3, n, 1);
    let r = p.restrict_fn("r", 3, nc, 0, restrict_full_weighting_3d(Op::Func(v)));
    let it = p.interp_fn("e", 3, n, 1, r);
    p.mark_output(it);
    let mut vin = vec![0.0; e * e * e];
    fill(&mut vin, 7);
    zero_ghost_3d(&mut vin, e);
    check_all_variants(&p, 3, vec![4, 4, 8], &[("V", &vin)], "e", e * e * e);
}

#[test]
fn diamond_matches_reference_many_steps() {
    // a long smoother chain to exercise multiple bands and both phases
    let n = 63i64;
    let e = (n + 2) as usize;
    let mut p = Pipeline::new("dt");
    let v = p.input("V", 2, n, 1);
    let f = p.input("F", 2, n, 1);
    let sm = p.tstencil(
        "sm",
        2,
        n,
        1,
        StepCount::Fixed(10),
        Some(v),
        Op::State.at(&[0, 0])
            - 0.2 * (stencil_2d(Op::State, &five(), 1.0) - Op::Func(f).at(&[0, 0])),
    );
    p.mark_output(sm);
    let mut vin = vec![0.0; e * e];
    let mut fin = vec![0.0; e * e];
    fill(&mut vin, 8);
    fill(&mut fin, 9);
    zero_ghost_2d(&mut vin, e);
    zero_ghost_2d(&mut fin, e);
    let mut o = PipelineOptions::for_variant(Variant::DtileOptPlus, 2);
    o.tile_sizes = vec![16, 16];
    o.dtile_band = 3;
    check_equivalence(&p, o, &[("V", &vin), ("F", &fin)], "sm.s9", e * e);
}

#[test]
fn pool_warm_across_cycles() {
    // run the same engine twice: second run must allocate nothing fresh in
    // pooled mode, and results must be identical for identical inputs
    let n = 31i64;
    let e = (n + 2) as usize;
    let mut p = Pipeline::new("pool");
    let v = p.input("V", 2, n, 1);
    let f = p.input("F", 2, n, 1);
    let sm = p.tstencil(
        "sm",
        2,
        n,
        1,
        StepCount::Fixed(4),
        Some(v),
        Op::State.at(&[0, 0])
            - 0.2 * (stencil_2d(Op::State, &five(), 1.0) - Op::Func(f).at(&[0, 0])),
    );
    let d = p.function(
        "defect",
        2,
        n,
        1,
        Op::Func(f).at(&[0, 0]) - stencil_2d(Op::Func(sm), &five(), 1.0),
    );
    p.mark_output(d);
    let mut o = PipelineOptions::for_variant(Variant::OptPlus, 2);
    o.tile_sizes = vec![8, 16];
    // force at least two groups so an internal (pooled) array exists
    o.group_limit = 3;
    let plan = compile(&p, &ParamBindings::new(), o).unwrap();
    assert!(
        plan.storage.num_intermediate_arrays() > 0,
        "test premise: needs an internal array"
    );
    let mut engine = Engine::new(plan);

    let mut vin = vec![0.0; e * e];
    let mut fin = vec![0.0; e * e];
    fill(&mut vin, 10);
    fill(&mut fin, 11);
    zero_ghost_2d(&mut vin, e);
    zero_ghost_2d(&mut fin, e);

    let mut out1 = vec![0.0; e * e];
    let s1 = engine
        .run(&[("V", &vin), ("F", &fin)], vec![("defect", &mut out1)])
        .unwrap();
    let mut out2 = vec![0.0; e * e];
    let s2 = engine
        .run(&[("V", &vin), ("F", &fin)], vec![("defect", &mut out2)])
        .unwrap();
    assert_eq!(out1, out2);
    assert_eq!(
        s2.pool.allocated_bytes, s1.pool.allocated_bytes,
        "second cycle must not malloc"
    );
    assert!(s2.pool.hits > 0);
}

#[test]
fn naive_has_no_pool_traffic() {
    let n = 15i64;
    let e = (n + 2) as usize;
    let mut p = Pipeline::new("nv");
    let v = p.input("V", 2, n, 1);
    let a = p.function("a", 2, n, 1, 2.0 * Op::Func(v).at(&[0, 0]));
    p.mark_output(a);
    let plan = compile(
        &p,
        &ParamBindings::new(),
        PipelineOptions::for_variant(Variant::Naive, 2),
    )
    .unwrap();
    let mut engine = Engine::new(plan);
    let vin = vec![1.0; e * e];
    let mut out = vec![0.0; e * e];
    let stats = engine.run(&[("V", &vin)], vec![("a", &mut out)]).unwrap();
    assert_eq!(stats.pool.hits + stats.pool.misses, 0);
    assert_eq!(out[e + 1], 2.0);
}
