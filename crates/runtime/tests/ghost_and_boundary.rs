//! Ghost-ring and boundary-value behaviour of the engine: non-zero
//! Dirichlet data, pooled-buffer recycling hygiene, and scratch halo
//! initialisation.

use gmg_ir::expr::Operand;
use gmg_ir::stencil::stencil_2d;
use gmg_ir::{BoundaryCond, ParamBindings, Pipeline, StepCount};
use gmg_runtime::fill_ghost;
use gmg_runtime::interp::run_reference;
use gmg_runtime::Engine;
use polymg::{compile, PipelineOptions, Variant};

#[test]
fn fill_ghost_touches_only_the_ring_2d() {
    let mut buf = vec![1.0; 5 * 6];
    fill_ghost(&mut buf, &[5, 6], 7.0);
    for y in 0..5usize {
        for x in 0..6usize {
            let v = buf[y * 6 + x];
            if y == 0 || y == 4 || x == 0 || x == 5 {
                assert_eq!(v, 7.0, "ring at ({y},{x})");
            } else {
                assert_eq!(v, 1.0, "interior at ({y},{x})");
            }
        }
    }
}

#[test]
fn fill_ghost_3d_ring() {
    let mut buf = vec![2.0; 4 * 4 * 4];
    fill_ghost(&mut buf, &[4, 4, 4], -1.0);
    let interior: Vec<usize> = (0..64)
        .filter(|i| {
            let (z, y, x) = (i / 16, (i / 4) % 4, i % 4);
            (1..3).contains(&z) && (1..3).contains(&y) && (1..3).contains(&x)
        })
        .collect();
    assert_eq!(interior.len(), 8);
    for (i, &v) in buf.iter().enumerate() {
        if interior.contains(&i) {
            assert_eq!(v, 2.0);
        } else {
            assert_eq!(v, -1.0);
        }
    }
}

/// A smoother chain with non-zero Dirichlet boundary: the engine's scratch
/// halo fill and ghost initialisation must match the interpreter.
#[test]
fn nonzero_dirichlet_boundary_matches_interpreter() {
    let n = 15i64;
    let e = (n + 2) as usize;
    let five = vec![
        vec![0.0, -1.0, 0.0],
        vec![-1.0, 4.0, -1.0],
        vec![0.0, -1.0, 0.0],
    ];
    let bval = 2.5;

    let mut p = Pipeline::new("dirichlet");
    let v = p.input("V", 2, n, 0);
    let f = p.input("F", 2, n, 0);
    let sm = p.tstencil(
        "sm",
        2,
        n,
        0,
        StepCount::Fixed(3),
        Some(v),
        Operand::State.at(&[0, 0])
            - 0.1 * (stencil_2d(Operand::State, &five, 1.0) - Operand::Func(f).at(&[0, 0])),
    );
    // every iterate keeps the same boundary value
    p.set_boundary(v, BoundaryCond::Dirichlet(bval));
    p.set_boundary(sm, BoundaryCond::Dirichlet(bval));
    p.mark_output(sm);

    // inputs with the boundary value on the ghost ring
    let mut vin = vec![0.0; e * e];
    let mut fin = vec![0.0; e * e];
    for y in 0..e {
        for x in 0..e {
            if y == 0 || y == e - 1 || x == 0 || x == e - 1 {
                vin[y * e + x] = bval;
            } else {
                vin[y * e + x] = ((y * 7 + x) % 5) as f64;
                fin[y * e + x] = ((y + x * 3) % 4) as f64;
            }
        }
    }

    for variant in [Variant::Naive, Variant::OptPlus] {
        let mut opts = PipelineOptions::for_variant(variant, 2);
        opts.tile_sizes = vec![4, 8];
        let plan = compile(&p, &ParamBindings::new(), opts).unwrap();
        let graph = plan.graph.clone();
        let mut engine = Engine::new(plan);
        // output ghost rings are the caller's responsibility (the solver
        // drivers maintain them); pre-fill with the boundary value
        let mut got = vec![0.0; e * e];
        for y in 0..e {
            for x in 0..e {
                if y == 0 || y == e - 1 || x == 0 || x == e - 1 {
                    got[y * e + x] = bval;
                }
            }
        }
        engine
            .run(&[("V", &vin), ("F", &fin)], vec![("sm.s2", &mut got)])
            .unwrap();
        let reference = run_reference(&graph, &[("V", &vin), ("F", &fin)]);
        let want = &reference["sm.s2"];
        for (i, (a, b)) in got.iter().zip(want).enumerate() {
            assert!(
                (a - b).abs() < 1e-12,
                "{}: idx {i}: {a} vs {b}",
                variant.label()
            );
        }
        // the ghost ring is untouched by the engine
        assert_eq!(got[0], bval);
        assert_eq!(got[e * e - 1], bval);
    }
}

/// Pool recycling must not leak one cycle's data into the next: two
/// engines' results for different inputs must match fresh runs exactly.
#[test]
fn pool_recycling_is_hygienic() {
    let n = 31i64;
    let e = (n + 2) as usize;
    let five = vec![
        vec![0.0, -1.0, 0.0],
        vec![-1.0, 4.0, -1.0],
        vec![0.0, -1.0, 0.0],
    ];
    let mut p = Pipeline::new("hyg");
    let v = p.input("V", 2, n, 1);
    let f = p.input("F", 2, n, 1);
    let sm = p.tstencil(
        "sm",
        2,
        n,
        1,
        StepCount::Fixed(4),
        Some(v),
        Operand::State.at(&[0, 0])
            - 0.1 * (stencil_2d(Operand::State, &five, 1.0) - Operand::Func(f).at(&[0, 0])),
    );
    let d = p.function(
        "d",
        2,
        n,
        1,
        Operand::Func(f).at(&[0, 0]) - stencil_2d(Operand::Func(sm), &five, 1.0),
    );
    p.mark_output(d);
    let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
    opts.tile_sizes = vec![8, 16];
    opts.group_limit = 3; // force internal pooled arrays
    let plan = compile(&p, &ParamBindings::new(), opts).unwrap();

    let mk_input = |seed: u64| -> Vec<f64> {
        let mut b = vec![0.0; e * e];
        for y in 1..=n as usize {
            for x in 1..=n as usize {
                let h = gmg_grid::init::splitmix64(seed ^ ((y as u64) << 20) ^ x as u64);
                b[y * e + x] = (h >> 11) as f64 / (1u64 << 53) as f64;
            }
        }
        b
    };

    // warm engine: run with input A, then input B
    let mut warm = Engine::new(plan.clone());
    let (va, fa) = (mk_input(1), mk_input(2));
    let (vb, fb) = (mk_input(3), mk_input(4));
    let mut o1 = vec![0.0; e * e];
    warm.run(&[("V", &va), ("F", &fa)], vec![("d", &mut o1)])
        .unwrap();
    let mut warm_b = vec![0.0; e * e];
    warm.run(&[("V", &vb), ("F", &fb)], vec![("d", &mut warm_b)])
        .unwrap();

    // fresh engine: run input B only
    let mut fresh = Engine::new(plan);
    let mut fresh_b = vec![0.0; e * e];
    fresh
        .run(&[("V", &vb), ("F", &fb)], vec![("d", &mut fresh_b)])
        .unwrap();

    assert_eq!(warm_b, fresh_b, "recycled buffers leaked state");
}
