//! Raw-pointer plumbing for tile-parallel writes into shared output arrays.
//!
//! Tiles write disjoint boxes of the same array; slices cannot express that,
//! so writers go through [`SharedOut`], which derives per-row `&mut [f64]`
//! segments from a raw pointer. Soundness rests on the planner's owned-region
//! partition (each output point belongs to exactly one tile — property
//! tested in `gmg-poly::tiling` and re-asserted by the integration suite)
//! and, for diamond execution, on the band-height clamp of
//! `gmg_poly::diamond` that keeps concurrent trapezoids on disjoint rows of
//! each parity buffer.

use crate::kernel::Space;
use gmg_poly::BoxDomain;

/// A shared, tile-writable view of one full array.
#[derive(Clone, Copy)]
pub struct SharedOut {
    ptr: *mut f64,
    len: usize,
}

unsafe impl Send for SharedOut {}
unsafe impl Sync for SharedOut {}

impl SharedOut {
    /// Wrap an exclusive slice. The caller promises that concurrent
    /// writers touch disjoint index ranges.
    pub fn new(data: &mut [f64]) -> Self {
        SharedOut {
            ptr: data.as_mut_ptr(),
            len: data.len(),
        }
    }

    /// Length of the underlying array.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A mutable row segment `[off, off+w)`.
    ///
    /// # Safety
    /// No other live reference (read or write) may overlap the segment,
    /// and the returned borrow must not outlive the array the
    /// `SharedOut` was built from (the lifetime is unconstrained by
    /// construction from a raw pointer).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn segment<'s>(&self, off: usize, w: usize) -> &'s mut [f64] {
        debug_assert!(off + w <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(off), w)
    }

    /// A shared segment `[off, off+w)`.
    ///
    /// # Safety
    /// No concurrent writer may overlap the segment; same lifetime
    /// caveat as [`Self::segment`].
    pub unsafe fn read_segment<'s>(&self, off: usize, w: usize) -> &'s [f64] {
        debug_assert!(off + w <= self.len);
        std::slice::from_raw_parts(self.ptr.add(off), w)
    }

    /// Copy `region` (global coordinates) from `src` into this array,
    /// which has dense extents `extents` and origin 0.
    ///
    /// # Safety
    /// The region must be disjoint from every concurrent access.
    pub unsafe fn copy_box_from(&self, src: &Space<'_>, extents: &[i64], region: &BoxDomain) {
        if region.is_empty() {
            return;
        }
        let nd = extents.len();
        let xl = region.0[nd - 1].lo;
        let w = region.0[nd - 1].len() as usize;
        match nd {
            2 => {
                for y in region.0[0].lo..=region.0[0].hi {
                    let off = (y * extents[1] + xl) as usize;
                    let sb = ((y - src.origin[0]) * src.extents[1] + (xl - src.origin[1])) as usize;
                    self.segment(off, w).copy_from_slice(&src.data[sb..sb + w]);
                }
            }
            3 => {
                let ps = extents[1] * extents[2];
                let sps = src.extents[1] * src.extents[2];
                for z in region.0[0].lo..=region.0[0].hi {
                    for y in region.0[1].lo..=region.0[1].hi {
                        let off = (z * ps + y * extents[2] + xl) as usize;
                        let sb = ((z - src.origin[0]) * sps
                            + (y - src.origin[1]) * src.extents[2]
                            + (xl - src.origin[2])) as usize;
                        self.segment(off, w).copy_from_slice(&src.data[sb..sb + w]);
                    }
                }
            }
            d => panic!("unsupported rank {d}"),
        }
    }
}

/// A shared, row-writable view of one full `f32` array — the
/// mixed-precision analogue of [`SharedOut`]. Workers of the mixed-chain
/// op ([`crate::ops::mixed`]) write disjoint row blocks of one ping-pong
/// buffer; the same disjointness contract applies.
#[derive(Clone, Copy)]
pub struct SharedF32 {
    ptr: *mut f32,
    len: usize,
}

unsafe impl Send for SharedF32 {}
unsafe impl Sync for SharedF32 {}

impl SharedF32 {
    /// Wrap an exclusive slice. The caller promises that concurrent
    /// writers touch disjoint index ranges.
    pub fn new(data: &mut [f32]) -> Self {
        SharedF32 {
            ptr: data.as_mut_ptr(),
            len: data.len(),
        }
    }

    /// Length of the underlying array.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A mutable row segment `[off, off+w)`.
    ///
    /// # Safety
    /// Same contract as [`SharedOut::segment`].
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn segment<'s>(&self, off: usize, w: usize) -> &'s mut [f32] {
        debug_assert!(off + w <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(off), w)
    }
}
