//! The execution engine: runs a [`polymg::CompiledPipeline`].
//!
//! One [`Engine::run`] call executes one multigrid cycle: groups in plan
//! order, with the storage behaviour selected by the plan's options —
//! per-cycle `malloc` (naive/opt) or pooled allocation with the generated
//! alloc/free points (§3.2.3), scratchpad arenas for overlapped tiles, and
//! modulo-buffer diamond execution for `TStencil` chains.

use crate::arena::ArenaPool;
use crate::kernel::{
    execute_stage, execute_stage_out, fill_outside, KernelInput, KernelOut, Space, SpaceMut,
};
use crate::pool::{BufferPool, PoolStats};
use gmg_grid::Buffer;
use gmg_ir::{StageId, StageInput};
use gmg_poly::diamond::split_time_tiling;
use gmg_poly::region::{propagate_regions, GroupEdge, GroupStage};
use gmg_poly::tiling::{owned_region, tile_partition};
use gmg_poly::{BoxDomain, Interval, Ratio};
use gmg_trace::{PoolSnapshot, StageHandle, Trace};
use polymg::{CompiledPipeline, GroupPlan, GroupTiling};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Re-export of the raw tile-write plumbing (kept at this path for
/// compatibility; the implementation lives in [`crate::tilebuf`]).
pub use crate::tilebuf;
use crate::tilebuf::SharedOut;

/// Statistics of one engine run.
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Pool statistics after the run (pooled mode only; zeroed otherwise).
    pub pool: PoolStats,
    /// Wall-clock time of the cycle.
    pub elapsed: Duration,
    /// Bytes allocated fresh during this run (malloc traffic).
    pub fresh_bytes: usize,
}

/// Precomputed per-group runtime geometry.
struct GroupRt {
    /// Overlapped groups: the tile list over the reference domain.
    tiles: Vec<BoxDomain>,
    gstages: Vec<GroupStage>,
    edges: Vec<GroupEdge>,
    scales: Vec<Vec<Ratio>>,
}

/// The engine. Construct once per compiled pipeline, call
/// [`Engine::run`] once per multigrid cycle. The pool persists across runs
/// (the §3.2.3 cross-cycle behaviour).
pub struct Engine {
    plan: CompiledPipeline,
    pool: BufferPool,
    rayon_pool: Option<rayon::ThreadPool>,
    groups_rt: Vec<GroupRt>,
    trace: Trace,
    /// Per group, per in-group stage: interned span handles (disabled until
    /// [`Engine::set_trace`] installs a live trace).
    stage_handles: Vec<Vec<StageHandle>>,
    /// Pool counters already ingested into the trace (deltas per run).
    pool_reported: PoolStats,
}

enum Slot<'a> {
    Empty,
    Owned(Buffer),
    In(&'a [f64]),
    Out(&'a mut [f64]),
}

impl<'a> Slot<'a> {
    fn read(&self) -> &[f64] {
        match self {
            Slot::Owned(b) => b.as_slice(),
            Slot::In(s) => s,
            Slot::Out(s) => s,
            Slot::Empty => panic!("read of an array while it is being written (plan bug)"),
        }
    }

    fn write(&mut self) -> &mut [f64] {
        match self {
            Slot::Owned(b) => b.as_mut_slice(),
            Slot::Out(s) => s,
            Slot::In(_) => panic!("write to a pipeline input"),
            Slot::Empty => panic!("write to an unallocated array"),
        }
    }
}

impl Engine {
    /// Build an engine (precomputes tile lists and group geometry).
    pub fn new(plan: CompiledPipeline) -> Engine {
        let rayon_pool = if plan.options.threads > 0 {
            Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(plan.options.threads)
                    .build()
                    .expect("failed to build thread pool"),
            )
        } else {
            None
        };
        let consumers = plan.graph.consumers();
        let groups_rt = plan
            .groups
            .iter()
            .map(|g| Self::group_rt(&plan, g, &consumers))
            .collect();
        let stage_handles = plan
            .groups
            .iter()
            .map(|g| vec![StageHandle::disabled(); g.stages.len()])
            .collect();
        Engine {
            plan,
            pool: BufferPool::new(),
            rayon_pool,
            groups_rt,
            trace: Trace::disabled(),
            stage_handles,
            pool_reported: PoolStats::default(),
        }
    }

    /// Install a trace: every subsequent [`Engine::run`] records per-stage
    /// (and, for tiled groups, per-tile-aggregated) timing spans plus pool
    /// and scratch-arena statistics into it. Passing `Trace::disabled()`
    /// turns instrumentation back off.
    pub fn set_trace(&mut self, trace: Trace) {
        self.stage_handles = self
            .plan
            .groups
            .iter()
            .map(|g| {
                let kind = match g.tiling {
                    GroupTiling::Untiled => "untiled",
                    GroupTiling::Overlapped { .. } => "overlapped",
                    GroupTiling::Diamond { .. } => "diamond",
                };
                g.stages
                    .iter()
                    .map(|sid| trace.stage(&self.plan.graph.stage(*sid).name, kind))
                    .collect()
            })
            .collect();
        self.trace = trace;
    }

    /// The installed trace handle (disabled by default).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    fn group_rt(
        plan: &CompiledPipeline,
        group: &GroupPlan,
        consumers: &[Vec<StageId>],
    ) -> GroupRt {
        let (gstages, edges, _ref, scales, _lo) =
            polymg::grouping::group_geometry(&plan.graph, &group.stages, consumers);
        match &group.tiling {
            GroupTiling::Overlapped {
                ref_stage_local,
                tile_sizes,
                scales: plan_scales,
            } => GroupRt {
                tiles: tile_partition(&gstages[*ref_stage_local].domain, tile_sizes),
                gstages,
                edges,
                scales: plan_scales.clone(),
            },
            _ => GroupRt {
                tiles: Vec::new(),
                gstages,
                edges,
                scales,
            },
        }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &CompiledPipeline {
        &self.plan
    }

    /// Pool statistics (persist across runs).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Zero the pool counters (see [`BufferPool::reset_stats`]) so the next
    /// experiment row starts a fresh footprint measurement.
    pub fn reset_pool_stats(&mut self) {
        self.pool.reset_stats();
        self.pool_reported = self.pool.stats();
    }

    /// Execute one cycle. `inputs`/`outputs` bind external arrays by stage
    /// name; buffers are dense `(n+2)^d` with ghost rings already holding
    /// boundary values (the multigrid driver maintains them).
    pub fn run(
        &mut self,
        inputs: &[(&str, &[f64])],
        mut outputs: Vec<(&str, &mut [f64])>,
    ) -> RunStats {
        let start = Instant::now();
        let fresh0 = self.pool.stats().allocated_bytes;
        let pooled = self.plan.options.pooled_allocation;

        // array slot table
        let mut slots: Vec<Slot<'_>> = Vec::with_capacity(self.plan.storage.arrays.len());
        let mut fresh_bytes = 0usize;
        for (ai, spec) in self.plan.storage.arrays.iter().enumerate() {
            let len = spec.extents.iter().product::<i64>() as usize;
            if spec.external {
                // bind by tag
                if let Some((_, data)) = inputs.iter().find(|(n, _)| *n == spec.tag) {
                    assert_eq!(data.len(), len, "input '{}' has wrong size", spec.tag);
                    slots.push(Slot::In(data));
                } else if let Some(pos) = outputs.iter().position(|(n, _)| *n == spec.tag) {
                    let (_, d) = outputs.swap_remove(pos);
                    assert_eq!(d.len(), len, "output '{}' has wrong size", spec.tag);
                    slots.push(Slot::Out(d));
                } else {
                    panic!("external array '{}' (id {ai}) not bound", spec.tag);
                }
            } else if pooled {
                slots.push(Slot::Empty); // allocated at its group
            } else {
                // per-cycle malloc
                fresh_bytes += len * std::mem::size_of::<f64>();
                let mut b = Buffer::zeroed(len);
                if spec.boundary != 0.0 {
                    fill_ghost(b.as_mut_slice(), &spec.extents, spec.boundary);
                }
                slots.push(Slot::Owned(b));
            }
        }

        // split-borrow fields so the closure-based execution can hold &mut
        // to slots while reading plan/groups_rt
        let plan = &self.plan;
        let groups_rt = &self.groups_rt;
        let pool = &mut self.pool;
        let trace = &self.trace;
        let stage_handles = &self.stage_handles;

        let body = |slots: &mut Vec<Slot<'_>>, pool: &mut BufferPool| {
            for (gi, group) in plan.groups.iter().enumerate() {
                if pooled {
                    for &a in &plan.storage.alloc_before_group[gi] {
                        let spec = &plan.storage.arrays[a];
                        let len = spec.extents.iter().product::<i64>() as usize;
                        let mut b = pool.allocate(len);
                        fill_ghost(b.as_mut_slice(), &spec.extents, spec.boundary);
                        slots[a] = Slot::Owned(b);
                    }
                }
                exec_group(plan, &groups_rt[gi], group, slots, pool, pooled, &stage_handles[gi], trace);
                if pooled {
                    for &a in &plan.storage.free_after_group[gi] {
                        let s = std::mem::replace(&mut slots[a], Slot::Empty);
                        match s {
                            Slot::Owned(b) => pool.deallocate(b),
                            _ => panic!("pooled free of non-owned array"),
                        }
                    }
                }
            }
        };

        match &self.rayon_pool {
            Some(rp) => rp.install(|| body(&mut slots, pool)),
            None => body(&mut slots, pool),
        }

        let stats = self.pool.stats();
        if self.trace.is_enabled() {
            self.trace.record_pool(&PoolSnapshot {
                hits: stats.hits.saturating_sub(self.pool_reported.hits) as u64,
                misses: stats.misses.saturating_sub(self.pool_reported.misses) as u64,
                allocated_bytes: stats
                    .allocated_bytes
                    .saturating_sub(self.pool_reported.allocated_bytes)
                    as u64,
                peak_live_bytes: stats.peak_live_bytes as u64,
            });
            self.pool_reported = stats;
        }

        RunStats {
            pool: stats,
            elapsed: start.elapsed(),
            fresh_bytes: fresh_bytes
                + (stats.allocated_bytes - fresh0),
        }
    }
}

/// Fill the ghost ring (all cells outside the interior box) of a dense
/// array.
pub fn fill_ghost(data: &mut [f64], extents: &[i64], value: f64) {
    let origin = vec![0i64; extents.len()];
    let interior = BoxDomain::new(
        extents.iter().map(|&e| Interval::new(1, e - 2)).collect(),
    );
    let mut s = SpaceMut {
        data,
        origin: &origin,
        extents,
    };
    fill_outside(&mut s, &interior, value);
}

/// Per-tile region propagation with owned regions derived from the tile.
fn propagate_for_tile(
    gstages: &[GroupStage],
    edges: &[GroupEdge],
    scales: &[Vec<Ratio>],
    live_out: &[bool],
    tile: &BoxDomain,
) -> Vec<gmg_poly::region::StageRegion> {
    let nd = gstages[0].domain.ndims();
    let tile_stages: Vec<GroupStage> = gstages
        .iter()
        .enumerate()
        .map(|(i, s)| GroupStage {
            domain: s.domain.clone(),
            owned: if live_out[i] {
                owned_region(tile, &scales[i], &s.domain)
            } else {
                BoxDomain::empty(nd)
            },
        })
        .collect();
    propagate_regions(&tile_stages, edges)
}

#[allow(clippy::too_many_arguments)]
fn exec_group(
    plan: &CompiledPipeline,
    rt: &GroupRt,
    group: &GroupPlan,
    slots: &mut [Slot<'_>],
    pool: &mut BufferPool,
    pooled: bool,
    spans: &[StageHandle],
    trace: &Trace,
) {
    match &group.tiling {
        GroupTiling::Untiled => exec_untiled(plan, group, slots, &spans[0]),
        GroupTiling::Overlapped { .. } => exec_overlapped(plan, rt, group, slots, spans, trace),
        GroupTiling::Diamond {
            tile_w,
            band_h,
            radius,
        } => exec_diamond(plan, group, slots, pool, pooled, *tile_w, *band_h, *radius, spans),
    }
}

/// Resolve the full-array space of a stage (reads).
fn array_space<'a>(plan: &'a CompiledPipeline, slots: &'a [Slot<'_>], sid: StageId) -> Space<'a> {
    let a = plan.storage.array_of_stage[sid.0]
        .unwrap_or_else(|| panic!("stage {} has no array", plan.graph.stage(sid).name));
    let spec = &plan.storage.arrays[a];
    let data = slots[a].read();
    // dense full array: origin 0, extents straight from the spec
    Space {
        data,
        origin: zero_origin(spec.extents.len()),
        extents: &spec.extents,
    }
}

// Small per-rank static origin to avoid allocating on every read.
fn zero_origin(nd: usize) -> &'static [i64] {
    const Z: [i64; 3] = [0, 0, 0];
    &Z[..nd]
}

/// Kernel inputs of one stage when every producer is read from full arrays.
fn array_inputs<'a>(
    plan: &'a CompiledPipeline,
    slots: &'a [Slot<'_>],
    sid: StageId,
) -> (Vec<KernelInput<'a>>, Vec<f64>) {
    let stage = plan.graph.stage(sid);
    let mut ins = Vec::with_capacity(stage.inputs.len());
    let mut bnd = Vec::with_capacity(stage.inputs.len());
    for inp in &stage.inputs {
        match inp {
            StageInput::Zero => {
                ins.push(KernelInput::Zero);
                bnd.push(0.0);
            }
            StageInput::Stage(p) => {
                ins.push(KernelInput::Grid(array_space(plan, slots, *p)));
                bnd.push(plan.graph.stage(*p).boundary.value());
            }
        }
    }
    (ins, bnd)
}

/// Untiled execution (single-stage groups): full-domain sweep parallel over
/// the outermost dimension.
fn exec_untiled(plan: &CompiledPipeline, group: &GroupPlan, slots: &mut [Slot<'_>], span: &StageHandle) {
    assert_eq!(group.stages.len(), 1, "untiled groups are single-stage");
    let sid = group.stages[0];
    let stage = plan.graph.stage(sid);
    let kernel = plan.kernels[sid.0].as_ref().expect("input stage in group");
    let a = plan.storage.array_of_stage[sid.0].expect("untiled stage without array");

    // take the output array
    let taken = std::mem::replace(&mut slots[a], Slot::Empty);
    let mut taken = taken;
    {
        let out_data = taken.write();
        let spec = &plan.storage.arrays[a];
        let ext: Vec<i64> = spec.extents.clone();
        let row_block = spec.extents[1..].iter().product::<i64>() as usize;
        let (ins, bnd) = array_inputs(plan, slots, sid);

        // split interior rows into chunks
        let outer = stage.domain.0[0];
        let nthreads = rayon::current_num_threads().max(1);
        let rows = outer.len();
        let chunk = (rows + nthreads as i64 - 1) / nthreads as i64;
        let mut bounds = Vec::new();
        let mut lo = outer.lo;
        while lo <= outer.hi {
            let hi = (lo + chunk - 1).min(outer.hi);
            bounds.push((lo, hi));
            lo = hi + 1;
        }
        // split the buffer at row boundaries (whole outer-dim rows)
        let mut pieces: Vec<(&mut [f64], (i64, i64))> = Vec::with_capacity(bounds.len());
        let mut rest = out_data;
        let mut covered = 0usize;
        for &(lo, hi) in &bounds {
            let begin = lo as usize * row_block;
            let end = (hi as usize + 1) * row_block;
            let (_, tail) = rest.split_at_mut(begin - covered);
            let (mine, tail2) = tail.split_at_mut(end - begin);
            pieces.push((mine, (lo, hi)));
            rest = tail2;
            covered = end;
        }

        let ext_ref = &ext;
        let region_proto = &stage.domain;
        let t0 = span.is_enabled().then(Instant::now);
        let npieces = pieces.len() as u64;
        pieces
            .into_par_iter()
            .for_each(|(data, (lo, hi))| {
                let mut region = region_proto.clone();
                region.0[0] = Interval::new(lo, hi);
                let mut origin = vec![0i64; ext_ref.len()];
                origin[0] = lo;
                let mut extents = ext_ref.clone();
                extents[0] = hi - lo + 1;
                let mut out = SpaceMut {
                    data,
                    origin: &origin,
                    extents: &extents,
                };
                execute_stage(kernel, &region, &mut out, &ins, &bnd);
            });
        if let Some(t0) = t0 {
            span.record(t0.elapsed().as_nanos() as u64, npieces, stage.domain.len() as u64);
        }
    }
    slots[a] = taken;
}

/// Overlapped-tile execution with scratchpads.
fn exec_overlapped(
    plan: &CompiledPipeline,
    rt: &GroupRt,
    group: &GroupPlan,
    slots: &mut [Slot<'_>],
    spans: &[StageHandle],
    trace: &Trace,
) {
    // take all written arrays
    let mut write_arrays: Vec<usize> = group
        .stages
        .iter()
        .zip(&group.live_out)
        .filter(|(_, lo)| **lo)
        .map(|(s, _)| plan.storage.array_of_stage[s.0].expect("live-out without array"))
        .collect();
    write_arrays.sort();
    write_arrays.dedup();
    let mut taken: Vec<(usize, Slot<'_>)> = write_arrays
        .iter()
        .map(|&a| (a, std::mem::replace(&mut slots[a], Slot::Empty)))
        .collect();

    {
        // shared outs
        let outs: Vec<(usize, SharedOut)> = taken
            .iter_mut()
            .map(|(a, s)| (*a, SharedOut::new(s.write())))
            .collect();
        let shared_of = |a: usize| -> SharedOut {
            outs.iter().find(|(aa, _)| *aa == a).unwrap().1
        };

        let arena_pool = ArenaPool::new(&group.scratch_buffers);
        let slots_ref: &[Slot<'_>] = slots;
        let tracing = trace.is_enabled();

        rt.tiles.par_iter().for_each(|tile| {
            let regions =
                propagate_for_tile(&rt.gstages, &rt.edges, &rt.scales, &group.live_out, tile);
            let mut arena = arena_pool.get();

            for (i, sid) in group.stages.iter().enumerate() {
                let stage = plan.graph.stage(*sid);
                let kernel = plan.kernels[sid.0].as_ref().expect("input in group");
                let compute = &regions[i].compute;
                if compute.is_empty() {
                    continue;
                }
                let t0 = tracing.then(Instant::now);
                let owned = if group.live_out[i] {
                    owned_region(tile, &rt.scales[i], &stage.domain)
                } else {
                    BoxDomain::empty(compute.ndims())
                };

                // take the stage's own scratch buffer out of the arena
                // first so producer views can borrow the arena immutably
                let own_slot = group.scratch_slot[i];
                let mut own_buf = own_slot.map(|sl| std::mem::take(arena.buf(sl)));

                // build inputs: in-group producers from their scratchpads,
                // everything else from full arrays
                let mut ins: Vec<KernelInput<'_>> = Vec::with_capacity(stage.inputs.len());
                let mut bnd: Vec<f64> = Vec::with_capacity(stage.inputs.len());
                // owned metadata for producer scratch views
                let mut meta: Vec<(Vec<i64>, Vec<i64>)> = Vec::new();
                for inp in &stage.inputs {
                    if let StageInput::Stage(p) = inp {
                        if let Some(pi) = group.stages.iter().position(|s| s == p) {
                            if group.scratch_slot[pi].is_some() {
                                let alloc = &regions[pi].alloc;
                                meta.push((
                                    alloc.0.iter().map(|iv| iv.lo).collect(),
                                    alloc.extents(),
                                ));
                            }
                        }
                    }
                }
                let mut mi = 0usize;
                for inp in &stage.inputs {
                    match inp {
                        StageInput::Zero => {
                            ins.push(KernelInput::Zero);
                            bnd.push(0.0);
                        }
                        StageInput::Stage(p) => {
                            bnd.push(plan.graph.stage(*p).boundary.value());
                            let local = group.stages.iter().position(|s| s == p);
                            match local.and_then(|pi| group.scratch_slot[pi]) {
                                Some(buf) => {
                                    let (o, e) = &meta[mi];
                                    mi += 1;
                                    let size = e.iter().product::<i64>() as usize;
                                    // producers are earlier stages whose
                                    // buffers are read-only at this point
                                    // (own buffer was taken out above and a
                                    // producer can never alias it)
                                    let pdata = &arena.bufs()[buf][..size];
                                    ins.push(KernelInput::Grid(Space {
                                        data: pdata,
                                        origin: o,
                                        extents: e,
                                    }));
                                }
                                None => {
                                    ins.push(KernelInput::Grid(array_space(
                                        plan, slots_ref, *p,
                                    )));
                                }
                            }
                        }
                    }
                }

                if own_slot.is_some() {
                    // compute the full overlap region into the scratchpad
                    let alloc = regions[i].alloc.clone();
                    let origin: Vec<i64> = alloc.0.iter().map(|iv| iv.lo).collect();
                    let extents = alloc.extents();
                    let size = extents.iter().product::<i64>() as usize;
                    let own = own_buf.as_mut().unwrap();
                    {
                        let data = &mut own[..size];
                        {
                            let mut sp = SpaceMut {
                                data,
                                origin: &origin,
                                extents: &extents,
                            };
                            fill_outside(&mut sp, compute, stage.boundary.value());
                        }
                        let out = KernelOut::Dense(SpaceMut {
                            data,
                            origin: &origin,
                            extents: &extents,
                        });
                        execute_stage_out(kernel, compute, out, &ins, &bnd);
                    }
                    if group.live_out[i] && !owned.is_empty() {
                        // copy the owned sub-region scratch → array
                        let a = plan.storage.array_of_stage[sid.0].unwrap();
                        let spec = &plan.storage.arrays[a];
                        let src = Space {
                            data: &own[..size],
                            origin: &origin,
                            extents: &extents,
                        };
                        // SAFETY: owned boxes partition the array across
                        // tiles.
                        unsafe {
                            shared_of(a).copy_box_from(&src, &spec.extents, &owned);
                        }
                    }
                } else {
                    // live-out with no in-group consumer: write the owned
                    // region straight into the shared array (the generated-
                    // code behaviour of Figure 8)
                    debug_assert!(group.live_out[i]);
                    debug_assert_eq!(&owned, compute);
                    let a = plan.storage.array_of_stage[sid.0].unwrap();
                    let spec = &plan.storage.arrays[a];
                    let out = KernelOut::Shared {
                        out: shared_of(a),
                        extents: &spec.extents,
                    };
                    execute_stage_out(kernel, compute, out, &ins, &bnd);
                }

                if let (Some(sl), Some(own)) = (own_slot, own_buf) {
                    *arena.buf(sl) = own;
                }
                if let Some(t0) = t0 {
                    spans[i].record(t0.elapsed().as_nanos() as u64, 1, compute.len() as u64);
                }
            }

            arena_pool.put(arena);
        });
        trace.record_arena(arena_pool.created() as u64, arena_pool.recycled() as u64);
    }

    for (a, s) in taken {
        slots[a] = s;
    }
}

/// Diamond/split time-tiled execution of a smoother chain with two modulo
/// buffers.
#[allow(clippy::too_many_arguments)]
fn exec_diamond(
    plan: &CompiledPipeline,
    group: &GroupPlan,
    slots: &mut [Slot<'_>],
    pool: &mut BufferPool,
    pooled: bool,
    tile_w: i64,
    band_h: usize,
    radius: i64,
    spans: &[StageHandle],
) {
    let steps = group.stages.len();
    assert!(steps >= 1);
    let last = group.stages[steps - 1];
    let stage0 = plan.graph.stage(group.stages[0]);
    let domain = stage0.domain.clone();
    let nd = domain.ndims();
    let n_outer = domain.0[0].len();
    assert!(
        group.live_out.iter().take(steps - 1).all(|l| !l),
        "diamond chain with interior live-out"
    );

    let a_out = plan.storage.array_of_stage[last.0].expect("diamond live-out without array");
    let spec = &plan.storage.arrays[a_out];
    let len = spec.extents.iter().product::<i64>() as usize;
    let ext: Vec<i64> = spec.extents.clone();
    let row_block = spec.extents[1..].iter().product::<i64>() as usize;

    // temp modulo buffer (only needed for ≥2 steps)
    let mut temp = if steps >= 2 {
        let mut b = if pooled {
            pool.allocate(len)
        } else {
            Buffer::zeroed(len)
        };
        fill_ghost(b.as_mut_slice(), &spec.extents, spec.boundary);
        Some(b)
    } else {
        None
    };

    let taken = std::mem::replace(&mut slots[a_out], Slot::Empty);
    let mut taken = taken;
    {
        let out_data = taken.write();
        let out_shared = SharedOut::new(out_data);
        let temp_shared = temp
            .as_mut()
            .map(|b| SharedOut::new(b.as_mut_slice()));
        // buf of a step: parity p writes bufs[p]; arrange last step → out
        let last_parity = (steps - 1) % 2;
        let buf_of = |p: usize| -> SharedOut {
            if p == last_parity {
                out_shared
            } else {
                temp_shared.expect("temp needed")
            }
        };

        let slots_ref: &[Slot<'_>] = slots;
        let schedule = split_time_tiling(n_outer, steps, tile_w, band_h, radius);
        let outer_dom = domain.0[0];
        let tracing = spans.iter().any(StageHandle::is_enabled);

        for band in &schedule {
            for phase in [&band.phase1, &band.phase2] {
                phase.par_iter().for_each(|trap| {
                    for s in 0..band.steps {
                        let t = band.t0 + s;
                        let rows = trap.rows_at(s as i64, outer_dom);
                        if rows.is_empty() {
                            continue;
                        }
                        let t0 = tracing.then(Instant::now);
                        let sid = group.stages[t];
                        let stage = plan.graph.stage(sid);
                        let kernel = plan.kernels[sid.0].as_ref().unwrap();

                        // region: these rows × full inner interior
                        let mut region = domain.clone();
                        region.0[0] = rows;

                        // destination: rows block of bufs[t%2]
                        let dst = buf_of(t % 2);
                        let d_off = rows.lo as usize * row_block;
                        let d_len = rows.len() as usize * row_block;
                        // SAFETY: trapezoids of one phase write disjoint
                        // rows at each step (split-tiling invariant), and
                        // cross-step writes to one parity buffer are
                        // disjoint by the band-height clamp.
                        let data = unsafe { dst.segment(d_off, d_len) };
                        let mut origin = vec![0i64; nd];
                        origin[0] = rows.lo;
                        let mut extents = ext.clone();
                        extents[0] = rows.len();
                        let mut out = SpaceMut {
                            data,
                            origin: &origin,
                            extents: &extents,
                        };

                        // inputs
                        let mut ins: Vec<KernelInput<'_>> =
                            Vec::with_capacity(stage.inputs.len());
                        let mut bnd: Vec<f64> = Vec::with_capacity(stage.inputs.len());
                        // read rows from the previous parity buffer,
                        // dilated by the radius and clamped to the ghost
                        let r_lo = (rows.lo - radius).max(0);
                        let r_hi = (rows.hi + radius).min(ext[0] - 1);
                        let r_off = r_lo as usize * row_block;
                        let r_len = (r_hi - r_lo + 1) as usize * row_block;
                        let mut r_origin = vec![0i64; nd];
                        r_origin[0] = r_lo;
                        let mut r_ext = ext.clone();
                        r_ext[0] = r_hi - r_lo + 1;
                        let (r_origin, r_ext) = (r_origin, r_ext);

                        for inp in &stage.inputs {
                            match inp {
                                StageInput::Zero => {
                                    ins.push(KernelInput::Zero);
                                    bnd.push(0.0);
                                }
                                StageInput::Stage(p) => {
                                    bnd.push(plan.graph.stage(*p).boundary.value());
                                    let in_group =
                                        group.stages.iter().position(|s| s == p);
                                    match in_group {
                                        Some(pi) => {
                                            debug_assert_eq!(pi, t - 1);
                                            let src = buf_of(pi % 2);
                                            // SAFETY: disjoint from all
                                            // concurrent writes by the
                                            // band-height clamp.
                                            let pdata = unsafe {
                                                src.read_segment(r_off, r_len)
                                            };
                                            ins.push(KernelInput::Grid(Space {
                                                data: pdata,
                                                origin: &r_origin,
                                                extents: &r_ext,
                                            }));
                                        }
                                        None => {
                                            ins.push(KernelInput::Grid(array_space(
                                                plan, slots_ref, *p,
                                            )));
                                        }
                                    }
                                }
                            }
                        }
                        execute_stage(kernel, &region, &mut out, &ins, &bnd);
                        if let Some(t0) = t0 {
                            spans[t].record(
                                t0.elapsed().as_nanos() as u64,
                                1,
                                region.len() as u64,
                            );
                        }
                    }
                });
            }
        }
    }
    slots[a_out] = taken;

    if let Some(b) = temp {
        if pooled {
            pool.deallocate(b);
        }
    }
}
