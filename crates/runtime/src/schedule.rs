//! The schedule VM: binds external arrays into program slots and interprets
//! a [`polymg::schedule::ExecProgram`] op by op.
//!
//! One [`Engine::run`] call executes one program pass (one multigrid cycle
//! for compiled pipelines). The engine owns no execution logic of its own —
//! every op's behaviour lives in [`crate::ops`]; the loop here only
//! dispatches, times each op for the trace's op-level timeline, and manages
//! slot lifetimes (`malloc_fresh` / `pool_alloc` / `pool_free`).
//!
//! Programs normally come from [`polymg::schedule::lower`], but any
//! hand-assembled [`ExecProgram`] runs too: `gmg-dist` drives its
//! fine-level smoother batches through [`Engine::run_with_hooks`], whose
//! [`ExecHooks::halo_exchange`] callback reaches back into its
//! communication layer at every [`ExecOp::HaloExchange`] op.

use crate::kernel::{copy_box, fill_outside, Space, SpaceMut};
use crate::pool::{BufferPool, F32Pool, PoolStats};
use gmg_grid::Buffer;
use gmg_poly::{BoxDomain, Interval};
use gmg_trace::{OpHandle, PoolSnapshot, StageHandle, ThreadsSnapshot, Trace};
use polymg::schedule::{ExecOp, ExecProgram};
use polymg::{ChaosOptions, ChaosStats, CompiledPipeline, FaultPlan, FaultSite};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Statistics of one engine run.
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Pool statistics after the run (pooled mode only; zeroed otherwise).
    pub pool: PoolStats,
    /// Wall-clock time of the cycle.
    pub elapsed: Duration,
    /// Bytes allocated fresh during this run (malloc traffic).
    pub fresh_bytes: usize,
}

/// Typed execution failure. A serving process must not abort on a mis-bound
/// input, so every user-reachable condition surfaces here instead of
/// panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// An external slot had no matching entry in `inputs`/`outputs`.
    NotBound { name: String },
    /// A bound array's length does not match the slot's extents.
    WrongSize {
        name: String,
        expected: usize,
        got: usize,
    },
    /// The schedule wrote to a slot bound as a read-only input.
    WriteToInput { name: String },
    /// The schedule touched a slot outside its allocated lifetime.
    Unallocated { name: String },
    /// The program violated a schedule invariant (lowering bug).
    PlanViolation(&'static str),
    /// The program contains a hook op the installed [`ExecHooks`] does not
    /// implement.
    UnsupportedHook(&'static str),
    /// A worker panicked inside a parallel section of the named op. The
    /// panic was contained to that op (slots restored, pooled buffers
    /// recovered); the engine and its pools stay usable.
    WorkerPanicked { op: &'static str, detail: String },
    /// An armed [`FaultPlan`] injected an unrecoverable fault at the named
    /// site (sites with a recovery policy never surface here).
    FaultInjected {
        site: &'static str,
        op: &'static str,
    },
    /// A halo exchange failed after exhausting its bounded retries.
    HaloFailed { attempts: usize, detail: String },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::NotBound { name } => write!(f, "external array '{name}' not bound"),
            ExecError::WrongSize {
                name,
                expected,
                got,
            } => write!(
                f,
                "array '{name}' has wrong size: expected {expected} elements, got {got}"
            ),
            ExecError::WriteToInput { name } => {
                write!(f, "schedule writes to read-only input '{name}'")
            }
            ExecError::Unallocated { name } => {
                write!(f, "array '{name}' used outside its allocated lifetime")
            }
            ExecError::PlanViolation(what) => write!(f, "schedule invariant violated: {what}"),
            ExecError::UnsupportedHook(hook) => {
                write!(f, "program needs unsupported hook '{hook}'")
            }
            ExecError::WorkerPanicked { op, detail } => {
                write!(f, "worker panicked in op '{op}': {detail}")
            }
            ExecError::FaultInjected { site, op } => {
                write!(f, "injected fault at site '{site}' in op '{op}'")
            }
            ExecError::HaloFailed { attempts, detail } => {
                write!(
                    f,
                    "halo exchange failed after {attempts} attempts: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// One storage slot at runtime.
pub(crate) enum Slot<'a> {
    Empty,
    Owned(Buffer),
    In(&'a [f64]),
    Out(&'a mut [f64]),
}

impl Slot<'_> {
    pub(crate) fn try_read(&self, name: &str) -> Result<&[f64], ExecError> {
        match self {
            Slot::Owned(b) => Ok(b.as_slice()),
            Slot::In(s) => Ok(s),
            Slot::Out(s) => Ok(s),
            Slot::Empty => Err(ExecError::Unallocated {
                name: name.to_string(),
            }),
        }
    }

    pub(crate) fn try_write(&mut self, name: &str) -> Result<&mut [f64], ExecError> {
        match self {
            Slot::Owned(b) => Ok(b.as_mut_slice()),
            Slot::Out(s) => Ok(s),
            Slot::In(_) => Err(ExecError::WriteToInput {
                name: name.to_string(),
            }),
            Slot::Empty => Err(ExecError::Unallocated {
                name: name.to_string(),
            }),
        }
    }
}

/// Mutable access to program slots, handed to [`ExecHooks`] callbacks.
pub struct SlotView<'v, 'a> {
    slots: &'v mut [Slot<'a>],
    program: &'v ExecProgram,
}

impl SlotView<'_, '_> {
    /// Distinct mutable views of the given slots, in request order.
    pub fn many_mut(&mut self, ids: &[usize]) -> Result<Vec<&mut [f64]>, ExecError> {
        for (i, a) in ids.iter().enumerate() {
            if ids[..i].contains(a) {
                return Err(ExecError::PlanViolation("duplicate slot in hook request"));
            }
        }
        let mut picked: Vec<Option<&mut [f64]>> = ids.iter().map(|_| None).collect();
        for (si, slot) in self.slots.iter_mut().enumerate() {
            if let Some(pos) = ids.iter().position(|&id| id == si) {
                picked[pos] = Some(slot.try_write(&self.program.slots[si].name)?);
            }
        }
        picked
            .into_iter()
            .map(|p| p.ok_or(ExecError::PlanViolation("hook requested unknown slot")))
            .collect()
    }
}

/// Host callbacks for ops the VM cannot execute by itself. `Send` because
/// the interpreter loop may run inside a dedicated rayon pool.
pub trait ExecHooks: Send {
    /// Execute a [`ExecOp::HaloExchange`]: exchange ghost regions to
    /// `depth` across whatever decomposition the host maintains.
    fn halo_exchange(
        &mut self,
        depth: usize,
        slots: &mut SlotView<'_, '_>,
    ) -> Result<(), ExecError> {
        let _ = (depth, slots);
        Err(ExecError::UnsupportedHook("halo_exchange"))
    }
}

/// Hook set for programs without hook ops (every compiled pipeline).
pub struct NoHooks;

impl ExecHooks for NoHooks {}

/// External bindings of one right-hand side in a batched pass (see
/// [`Engine::run_batch`]). Each RHS binds the same external slot *names*
/// the program declares, just to different arrays.
pub struct BatchRhs<'a> {
    pub inputs: Vec<(&'a str, &'a [f64])>,
    pub outputs: Vec<(&'a str, &'a mut [f64])>,
}

/// Per slot: is the ghost ring left untouched by a full program pass?
///
/// A slot's ring is *stable* when every write the program performs on it —
/// stage sweeps, diamond outputs, live-out copies — stays inside the
/// interior box `[origin+1, origin+extent−2]`. For a stable slot the fill
/// value written before the first RHS of a batch is still in place when the
/// next RHS starts, so the batch sweep can skip the re-fill (the interior
/// needs no care either: the recycling invariant guarantees every interior
/// cell is overwritten before it is read). `HaloExchange` hands slots to
/// host hooks that write ghost rows by design, so its presence disables
/// the analysis wholesale.
fn ghost_stable_slots(program: &ExecProgram) -> Vec<bool> {
    let n = program.slots.len();
    if program
        .ops
        .iter()
        .any(|op| matches!(op, ExecOp::HaloExchange { .. }))
    {
        return vec![false; n];
    }
    let mut stable = vec![true; n];
    let note_write = |stable: &mut Vec<bool>, slot: usize, region: &BoxDomain| {
        let spec = &program.slots[slot];
        let inside = region
            .0
            .iter()
            .zip(spec.origin.iter().zip(&spec.extents))
            .all(|(iv, (&o, &e))| iv.lo > o && iv.hi <= o + e - 2);
        if !inside {
            stable[slot] = false;
        }
    };
    for op in &program.ops {
        match op {
            ExecOp::RunUntiledStage { stage } => {
                if let Some(s) = stage.slot {
                    note_write(&mut stable, s, &stage.domain);
                }
            }
            ExecOp::RunOverlappedGroup { stages, .. } => {
                for st in stages {
                    if let Some(s) = st.slot {
                        note_write(&mut stable, s, &st.domain);
                    }
                }
            }
            ExecOp::RunDiamondChain {
                stages, out_slot, ..
            }
            | ExecOp::RunMixedChain { stages, out_slot } => {
                for st in stages {
                    if let Some(s) = st.slot {
                        note_write(&mut stable, s, &st.domain);
                    }
                }
                if let Some(last) = stages.last() {
                    note_write(&mut stable, *out_slot, &last.domain);
                }
            }
            ExecOp::CopyLiveOut { dst, region, .. } => note_write(&mut stable, *dst, region),
            _ => {}
        }
    }
    stable
}

/// Rebind the program's external slots to one RHS's arrays, replacing the
/// previous RHS's bindings in place. Internal slots are untouched.
fn bind_externals<'a>(
    program: &ExecProgram,
    slots: &mut [Slot<'a>],
    inputs: &[(&'a str, &'a [f64])],
    mut outputs: Vec<(&'a str, &'a mut [f64])>,
) -> Result<(), ExecError> {
    for (i, spec) in program.slots.iter().enumerate() {
        if !spec.external {
            continue;
        }
        let len = spec.len();
        if let Some((_, data)) = inputs.iter().find(|(n, _)| *n == spec.name) {
            if data.len() != len {
                return Err(ExecError::WrongSize {
                    name: spec.name.clone(),
                    expected: len,
                    got: data.len(),
                });
            }
            slots[i] = Slot::In(data);
        } else if let Some(pos) = outputs.iter().position(|(n, _)| *n == spec.name) {
            let (_, d) = outputs.swap_remove(pos);
            if d.len() != len {
                return Err(ExecError::WrongSize {
                    name: spec.name.clone(),
                    expected: len,
                    got: d.len(),
                });
            }
            slots[i] = Slot::Out(d);
        } else {
            return Err(ExecError::NotBound {
                name: spec.name.clone(),
            });
        }
    }
    Ok(())
}

/// The schedule VM. Construct once per program (or compiled plan), call
/// [`Engine::run`] once per cycle. The pool persists across runs (the
/// §3.2.3 cross-cycle behaviour).
pub struct Engine {
    plan: Option<Arc<CompiledPipeline>>,
    program: ExecProgram,
    pool: BufferPool,
    /// f32 scratch for mixed-precision chains (persists across runs like
    /// the f64 pool, so warm cycles allocate nothing new).
    f32_pool: F32Pool,
    rayon_pool: Option<rayon::ThreadPool>,
    trace: Trace,
    /// Per op: interned timeline handle (disabled until [`Engine::set_trace`]).
    op_handles: Vec<OpHandle>,
    /// Per op, per scheduled stage: interned span handles.
    stage_handles: Vec<Vec<StageHandle>>,
    /// Pool counters already ingested into the trace (deltas per run).
    pool_reported: PoolStats,
    /// Thread-pool counters already ingested into the trace (deltas per
    /// run; `workers_spawned` is reported as a level, not a delta).
    threads_reported: rayon::PoolCounters,
    /// Armed fault schedule (disabled by default). Shared as an `Arc` so a
    /// distributed driver can arm one plan across several engines plus its
    /// own halo layer and read one merged set of counters.
    chaos: Arc<FaultPlan>,
    /// Chaos counters already ingested into the trace (deltas per run).
    chaos_reported: ChaosStats,
    /// Per slot: ghost ring provably untouched by a program pass (see
    /// [`ghost_stable_slots`]); lets batched runs skip per-RHS re-fills.
    ghost_stable: Vec<bool>,
}

impl Engine {
    /// Lower a compiled plan and build its VM. Accepts both an owned plan
    /// and a shared `Arc` from the plan cache.
    pub fn new(plan: impl Into<Arc<CompiledPipeline>>) -> Engine {
        let plan = plan.into();
        let program = polymg::schedule::lower(&plan);
        let mut e = Engine::from_program(program);
        e.plan = Some(plan);
        e
    }

    /// Build a VM for a hand-assembled program (no compiled plan attached).
    pub fn from_program(program: ExecProgram) -> Engine {
        let rayon_pool = if program.threads > 0 {
            // a dedicated pool is a performance feature, not a correctness
            // one: if the build fails, degrade to the process-wide pool
            rayon::ThreadPoolBuilder::new()
                .num_threads(program.threads)
                .build()
                .ok()
        } else {
            None
        };
        let nops = program.ops.len();
        let ghost_stable = ghost_stable_slots(&program);
        Engine {
            plan: None,
            program,
            pool: BufferPool::new(),
            f32_pool: F32Pool::new(),
            rayon_pool,
            trace: Trace::disabled(),
            op_handles: vec![OpHandle::disabled(); nops],
            stage_handles: vec![Vec::new(); nops],
            pool_reported: PoolStats::default(),
            threads_reported: rayon::PoolCounters::default(),
            chaos: Arc::new(FaultPlan::disabled()),
            chaos_reported: ChaosStats::default(),
            ghost_stable,
        }
    }

    /// Install a trace: every subsequent [`Engine::run`] records one span
    /// per op (the op-level timeline) plus per-stage spans for sweep ops,
    /// pool and scratch-arena statistics. Passing `Trace::disabled()` turns
    /// instrumentation back off.
    pub fn set_trace(&mut self, trace: Trace) {
        self.op_handles = self
            .program
            .ops
            .iter()
            .enumerate()
            .map(|(i, op)| trace.op(i as u64, op.mnemonic()))
            .collect();
        self.stage_handles = self
            .program
            .ops
            .iter()
            .map(|op| match op {
                ExecOp::RunUntiledStage { stage } => {
                    vec![trace.stage(&stage.name, "untiled")]
                }
                ExecOp::RunOverlappedGroup { stages, .. } => stages
                    .iter()
                    .map(|s| trace.stage(&s.name, "overlapped"))
                    .collect(),
                ExecOp::RunDiamondChain { stages, .. } => stages
                    .iter()
                    .map(|s| trace.stage(&s.name, "diamond"))
                    .collect(),
                ExecOp::RunMixedChain { stages, .. } => stages
                    .iter()
                    .map(|s| trace.stage(&s.name, "mixed"))
                    .collect(),
                _ => Vec::new(),
            })
            .collect();
        self.trace = trace;
    }

    /// The installed trace handle (disabled by default).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The compiled plan this engine was built from.
    ///
    /// # Panics
    /// For engines built via [`Engine::from_program`]; use
    /// [`Engine::try_plan`] to probe without panicking.
    pub fn plan(&self) -> &CompiledPipeline {
        self.try_plan()
            .expect("engine was built from a raw program, no compiled plan attached")
    }

    /// The compiled plan, or `None` for engines built from a raw program.
    pub fn try_plan(&self) -> Option<&CompiledPipeline> {
        self.plan.as_deref()
    }

    /// Arm (or with `None`, disarm) deterministic fault injection for every
    /// subsequent run. Chaos is a runtime property — it never affects the
    /// compiled plan or its cache fingerprint.
    pub fn set_chaos(&mut self, opts: Option<ChaosOptions>) {
        self.set_fault_plan(Arc::new(match opts {
            Some(o) => FaultPlan::new(o),
            None => FaultPlan::disabled(),
        }));
    }

    /// Install a (possibly shared) fault plan directly. A distributed
    /// driver arms one plan across all its engines and its halo layer so
    /// fault decisions and counters stay globally ordered.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.chaos_reported = plan.snapshot();
        self.chaos = plan;
    }

    /// The engine's current fault plan (disabled by default).
    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        &self.chaos
    }

    /// Lifetime chaos counters of the installed fault plan.
    pub fn chaos_stats(&self) -> ChaosStats {
        self.chaos.snapshot()
    }

    /// The schedule this engine interprets.
    pub fn program(&self) -> &ExecProgram {
        &self.program
    }

    /// Pool statistics (persist across runs).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Lifetime counters of the worker pool this engine executes on: its
    /// dedicated pool when `threads > 0`, the process-wide pool otherwise.
    /// `workers_spawned` staying constant across runs is the persistence
    /// guarantee (one worker set per engine, reused by every cycle).
    pub fn thread_counters(&self) -> rayon::PoolCounters {
        match &self.rayon_pool {
            Some(rp) => rp.counters(),
            None => rayon::global_pool_counters(),
        }
    }

    /// Zero the pool counters (see [`BufferPool::reset_stats`]) so the next
    /// experiment row starts a fresh footprint measurement.
    pub fn reset_pool_stats(&mut self) {
        self.pool.reset_stats();
        self.pool_reported = self.pool.stats();
    }

    /// Execute one pass of the program. `inputs`/`outputs` bind external
    /// slots by name; buffers are dense with ghost rings already holding
    /// boundary values (the multigrid driver maintains them).
    pub fn run(
        &mut self,
        inputs: &[(&str, &[f64])],
        outputs: Vec<(&str, &mut [f64])>,
    ) -> Result<RunStats, ExecError> {
        self.run_with_hooks(inputs, outputs, &mut NoHooks)
    }

    /// [`Engine::run`] with host callbacks for hook ops.
    pub fn run_with_hooks<H: ExecHooks>(
        &mut self,
        inputs: &[(&str, &[f64])],
        outputs: Vec<(&str, &mut [f64])>,
        hooks: &mut H,
    ) -> Result<RunStats, ExecError> {
        self.run_batch_with_hooks(
            vec![BatchRhs {
                inputs: inputs.to_vec(),
                outputs,
            }],
            hooks,
        )
    }

    /// Execute one pass of the program over every RHS in `batch`
    /// (one [`BatchRhs`] binds one right-hand side's external arrays).
    ///
    /// The first RHS runs the full op stream; later RHS reuse its
    /// allocations (`PoolAlloc` buffers stay live until the last RHS frees
    /// them, `MallocFresh` buffers are retained, not re-zeroed) and skip
    /// ghost re-fills for slots whose rings provably survive a pass. Results
    /// are bitwise-identical to running each RHS through [`Engine::run`]
    /// one at a time.
    pub fn run_batch(&mut self, batch: Vec<BatchRhs<'_>>) -> Result<RunStats, ExecError> {
        self.run_batch_with_hooks(batch, &mut NoHooks)
    }

    /// [`Engine::run_batch`] with host callbacks for hook ops.
    pub fn run_batch_with_hooks<'a, H: ExecHooks>(
        &mut self,
        batch: Vec<BatchRhs<'a>>,
        hooks: &mut H,
    ) -> Result<RunStats, ExecError> {
        if batch.is_empty() {
            return Err(ExecError::PlanViolation("empty batch"));
        }
        let start = Instant::now();
        let fresh0 = self.pool.stats().allocated_bytes;

        // All slots start empty; externals are (re)bound per RHS, internal
        // slots are brought to life by their MallocFresh / PoolAlloc ops on
        // the first RHS. Declared outside the interpreter closure so the
        // error path can sweep pooled buffers back.
        let mut slots: Vec<Slot<'a>> = self.program.slots.iter().map(|_| Slot::Empty).collect();

        // Split-borrow fields so the interpreter closure can hold &mut to
        // slots/pool while reading the program.
        let program = &self.program;
        let pool = &mut self.pool;
        let f32_pool = &mut self.f32_pool;
        let trace = &self.trace;
        let op_handles = &self.op_handles;
        let stage_handles = &self.stage_handles;
        let chaos: &FaultPlan = &self.chaos;
        let ghost_stable = &self.ghost_stable;
        let nrhs = batch.len();

        let body = move |slots: &mut Vec<Slot<'a>>,
                         pool: &mut BufferPool,
                         hooks: &mut H|
         -> Result<usize, ExecError> {
            let mut fresh_bytes = 0usize;
            for (k, rhs) in batch.into_iter().enumerate() {
                let first = k == 0;
                let last = k + 1 == nrhs;
                bind_externals(program, slots, &rhs.inputs, rhs.outputs)?;
                for (i, op) in program.ops.iter().enumerate() {
                    let oh = &op_handles[i];
                    let t0 = oh.is_enabled().then(Instant::now);
                    match op {
                        ExecOp::MallocFresh { slot } => {
                            let spec = &program.slots[*slot];
                            if first {
                                let len = spec.len();
                                fresh_bytes += len * std::mem::size_of::<f64>();
                                slots[*slot] = Slot::Owned(Buffer::zeroed(len));
                            } else if !ghost_stable[*slot] {
                                // Retained buffer, but the previous RHS may
                                // have dirtied the ring: restore the
                                // zero-init state a fresh malloc provides.
                                // (A gated FillGhost op follows for non-zero
                                // boundaries; interiors never carry data
                                // across a pass — pooled mode recycles them
                                // stale and stays bitwise-identical.)
                                fill_ghost(
                                    slots[*slot].try_write(&spec.name)?,
                                    &spec.extents,
                                    0.0,
                                );
                            }
                        }
                        ExecOp::PoolAlloc { slot } => {
                            if first {
                                let len = program.slots[*slot].len();
                                let buf = if chaos.should_fire(FaultSite::PoolAlloc) {
                                    // injected pool exhaustion: recycling
                                    // "fails", degrade to a counted fresh
                                    // malloc (the later FillGhost + full
                                    // interior overwrite make the zeroed
                                    // buffer bitwise-equivalent)
                                    let b = pool.allocate_fallback_fresh(len);
                                    chaos.record_recovered(FaultSite::PoolAlloc);
                                    b
                                } else {
                                    pool.allocate(len)
                                };
                                slots[*slot] = Slot::Owned(buf);
                            }
                        }
                        ExecOp::FillGhost { slot } => {
                            if first || !ghost_stable[*slot] {
                                let spec = &program.slots[*slot];
                                fill_ghost(
                                    slots[*slot].try_write(&spec.name)?,
                                    &spec.extents,
                                    spec.boundary,
                                );
                            }
                        }
                        ExecOp::PoolFree { slot } => {
                            if last {
                                match std::mem::replace(&mut slots[*slot], Slot::Empty) {
                                    Slot::Owned(b) => pool.deallocate(b),
                                    _ => {
                                        return Err(ExecError::PlanViolation(
                                            "pool free of non-owned array",
                                        ))
                                    }
                                }
                            }
                        }
                        ExecOp::RunUntiledStage { stage } => {
                            crate::ops::untiled::run(
                                program,
                                stage,
                                slots,
                                &stage_handles[i],
                                chaos,
                            )?;
                        }
                        ExecOp::RunOverlappedGroup {
                            stages,
                            live_out,
                            scratch_slot,
                            scratch_buffers,
                            geom,
                        } => {
                            crate::ops::overlapped::run(
                                program,
                                stages,
                                live_out,
                                scratch_slot,
                                scratch_buffers,
                                geom,
                                slots,
                                &stage_handles[i],
                                trace,
                                chaos,
                            )?;
                        }
                        ExecOp::RunDiamondChain {
                            stages,
                            schedule,
                            radius,
                            out_slot,
                        } => {
                            crate::ops::diamond::run(
                                program,
                                stages,
                                schedule,
                                *radius,
                                *out_slot,
                                slots,
                                pool,
                                program.pooled,
                                &stage_handles[i],
                                chaos,
                            )?;
                        }
                        ExecOp::RunMixedChain { stages, out_slot } => {
                            crate::ops::mixed::run(
                                program,
                                stages,
                                *out_slot,
                                slots,
                                f32_pool,
                                &stage_handles[i],
                                chaos,
                            )?;
                        }
                        ExecOp::CopyLiveOut { src, dst, region } => {
                            let sspec = &program.slots[*src];
                            let dspec = &program.slots[*dst];
                            let mut taken = std::mem::replace(&mut slots[*dst], Slot::Empty);
                            {
                                let ddata = taken.try_write(&dspec.name)?;
                                let sdata = slots[*src].try_read(&sspec.name)?;
                                let sp = Space {
                                    data: sdata,
                                    origin: &sspec.origin,
                                    extents: &sspec.extents,
                                };
                                let mut dp = SpaceMut {
                                    data: ddata,
                                    origin: &dspec.origin,
                                    extents: &dspec.extents,
                                };
                                copy_box(&sp, &mut dp, region);
                            }
                            slots[*dst] = taken;
                        }
                        ExecOp::HaloExchange { depth } => {
                            let mut view = SlotView { slots, program };
                            hooks.halo_exchange(*depth, &mut view)?;
                        }
                    }
                    if let Some(t0) = t0 {
                        oh.record(t0.elapsed().as_nanos() as u64);
                    }
                }
            }
            Ok(fresh_bytes)
        };

        // Last line of defence: an op-level catch_unwind already contains
        // worker panics, but a panic in serial interpreter code (or a hook)
        // must not unwind through the caller either — the engine owns a
        // pool whose accounting has to stay consistent.
        let outcome: Result<usize, ExecError> =
            match catch_unwind(AssertUnwindSafe(|| match &self.rayon_pool {
                Some(rp) => rp.install(|| body(&mut slots, pool, hooks)),
                None => body(&mut slots, pool, hooks),
            })) {
                Ok(r) => r,
                Err(p) => Err(ExecError::WorkerPanicked {
                    op: "engine",
                    detail: crate::ops::panic_detail(p),
                }),
            };

        if outcome.is_err() {
            // A failed pass stops mid-program, so its PoolFree ops never
            // ran. Sweep pooled slots (known statically from the program)
            // back into the free list: nothing leaks, live_bytes returns
            // to its pre-run level, and the pool stays reusable.
            let mut pooled_slot = vec![false; self.program.slots.len()];
            for op in &self.program.ops {
                if let ExecOp::PoolAlloc { slot } = op {
                    pooled_slot[*slot] = true;
                }
            }
            for (i, is_pooled) in pooled_slot.into_iter().enumerate() {
                if is_pooled {
                    if let Slot::Owned(b) = std::mem::replace(&mut slots[i], Slot::Empty) {
                        self.pool.deallocate(b);
                    }
                }
            }
        }

        // Publish trace deltas on both paths: a chaos run that ends in a
        // typed error still shows its armed/fired/recovered counters in
        // the --profile JSON.
        let stats = self.pool.stats();
        if self.trace.is_enabled() {
            self.trace.record_pool(&PoolSnapshot {
                hits: stats.hits.saturating_sub(self.pool_reported.hits) as u64,
                misses: stats.misses.saturating_sub(self.pool_reported.misses) as u64,
                allocated_bytes: stats
                    .allocated_bytes
                    .saturating_sub(self.pool_reported.allocated_bytes)
                    as u64,
                peak_live_bytes: stats.peak_live_bytes as u64,
            });
            self.pool_reported = stats;

            let tc = self.thread_counters();
            let prev = self.threads_reported;
            self.trace.record_threads(&ThreadsSnapshot {
                workers: tc.workers_spawned,
                regions: tc.regions.saturating_sub(prev.regions),
                items: tc.items.saturating_sub(prev.items),
                steals: tc.steals.saturating_sub(prev.steals),
                parks: tc.parks.saturating_sub(prev.parks),
            });
            self.threads_reported = tc;

            let snap = self.chaos.snapshot();
            let delta = snap.delta_since(&self.chaos_reported);
            self.chaos_reported = snap;
            if delta.total_armed() > 0 {
                let sites = FaultSite::all()
                    .iter()
                    .filter_map(|site| {
                        let i = site.index();
                        let (a, fi, r) = (delta.armed[i], delta.fired[i], delta.recovered[i]);
                        (a | fi | r != 0).then(|| gmg_trace::ChaosSiteSnapshot {
                            site: site.label().to_string(),
                            armed: a,
                            fired: fi,
                            recovered: r,
                        })
                    })
                    .collect();
                self.trace.record_chaos(&gmg_trace::ChaosSnapshot { sites });
            }
        }

        let fresh_bytes = outcome?;
        Ok(RunStats {
            pool: stats,
            elapsed: start.elapsed(),
            fresh_bytes: fresh_bytes + (stats.allocated_bytes - fresh0),
        })
    }
}

/// Fill the ghost ring (all cells outside the interior box) of a dense
/// array.
pub fn fill_ghost(data: &mut [f64], extents: &[i64], value: f64) {
    let origin = vec![0i64; extents.len()];
    let interior = BoxDomain::new(extents.iter().map(|&e| Interval::new(1, e - 2)).collect());
    let mut s = SpaceMut {
        data,
        origin: &origin,
        extents,
    };
    fill_outside(&mut s, &interior, value);
}
