//! # gmg-runtime — execution substrate for compiled PolyMG pipelines
//!
//! This crate is the Rust counterpart of the C code PolyMG generates
//! (paper Figure 8) plus the runtime library it links against:
//!
//! * [`pool`] — the pooled memory allocator of §3.2.3 (`pool_allocate` /
//!   `pool_deallocate`): buffers live across multigrid-cycle invocations,
//!   requests are served from a free list of previously allocated arrays.
//! * [`arena`] — per-worker scratchpad arenas for overlapped tiles (the
//!   stack buffers declared inside the tile loop in Figure 8).
//! * [`kernel`] — the specialised stencil loops executing lowered
//!   [`polymg::KernelBody`] cases over a region: parity-dispatched,
//!   unit-stride fast paths, with a checked generic path and an interpreter
//!   fallback.
//! * [`schedule`] — the VM: binds external arrays into slots and interprets
//!   a [`polymg::schedule::ExecProgram`] op stream, recording an op-level
//!   trace timeline; host callbacks ([`schedule::ExecHooks`]) execute
//!   `HaloExchange` ops for distributed programs.
//! * [`ops`] — the per-op execution bodies: untiled sweeps, overlapped
//!   tiles in parallel with scratchpads (rayon), and diamond/split time
//!   tiling for smoother chains.
//! * [`interp`] — a deliberately simple reference interpreter used as the
//!   correctness oracle in tests.
//!
//! ## Safety
//!
//! Parallel tiles write disjoint *boxes* of the same output arrays, which
//! cannot be expressed as slice splitting. All such writes go through the
//! [`tilebuf`] wrapper, whose single `unsafe` block is justified by the
//! owned-region partition property of the planner (each output point is
//! owned by exactly one tile — property-tested in `gmg-poly` and asserted
//! in the integration suite).

pub mod arena;
pub mod interp;
pub mod kernel;
pub mod ops;
pub mod pool;
pub mod schedule;
pub mod tilebuf;

pub use pool::{BufferPool, PoolStats};
pub use schedule::{
    fill_ghost, BatchRhs, Engine, ExecError, ExecHooks, NoHooks, RunStats, SlotView,
};
