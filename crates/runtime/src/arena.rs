//! Per-worker scratchpad arenas.
//!
//! The generated code of Figure 8 declares constant-size scratchpad buffers
//! inside the parallel tile loop — one set per executing thread, on the
//! thread's stack. In this runtime an arena is a heap-allocated set of
//! scratch buffers matching a group's [`polymg::ScratchBufferSpec`]s.
//!
//! Recycling is worker-affine: each pool worker (identified by
//! [`rayon::current_thread_index`]) has a dedicated slot it returns its
//! arena to and checks first on the next tile, so in steady state a worker
//! keeps touching the same cache-warm buffers with no cross-thread
//! traffic. Callers outside a parallel region (or a worker whose slot is
//! taken) fall back to a shared overflow stack, so nothing is ever leaked
//! or allocated twice unnecessarily.

use polymg::{FaultPlan, FaultSite, ScratchBufferSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Poison-tolerant lock: the slot/overflow mutexes guard plain
/// `Option<Arena>` / `Vec<Arena>` state that is consistent at every await
/// point, so after a worker panic (e.g. an injected one) the data is still
/// valid and recovery must keep going rather than propagate the poison.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One worker's scratch buffers for a group (index = scratch buffer id).
#[derive(Debug)]
pub struct Arena {
    bufs: Vec<Vec<f64>>,
}

impl Arena {
    fn new(specs: &[ScratchBufferSpec]) -> Self {
        Arena {
            bufs: specs.iter().map(|s| vec![0.0; s.capacity]).collect(),
        }
    }

    /// Mutable access to buffer `i`.
    pub fn buf(&mut self, i: usize) -> &mut Vec<f64> {
        &mut self.bufs[i]
    }

    /// Split into individually borrowable buffers.
    pub fn bufs_mut(&mut self) -> &mut [Vec<f64>] {
        &mut self.bufs
    }

    /// Read-only view of all buffers (producers of the current stage).
    pub fn bufs(&self) -> &[Vec<f64>] {
        &self.bufs
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// True when the arena holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }
}

/// Per-worker `(created, recycled)` counters.
#[derive(Debug, Default)]
struct WorkerStats {
    created: AtomicU64,
    recycled: AtomicU64,
}

/// A recycling pool of arenas for one group execution, with one affine
/// slot per pool worker plus a shared overflow stack.
pub struct ArenaPool<'a> {
    specs: &'a [ScratchBufferSpec],
    /// Slot `w` belongs to the worker with `current_thread_index() == w`.
    slots: Vec<Mutex<Option<Arena>>>,
    overflow: Mutex<Vec<Arena>>,
    /// Index `w` = worker `w`; the extra trailing entry counts gets/puts
    /// made outside any parallel region.
    stats: Vec<WorkerStats>,
    /// Armed fault schedule: `get` may be forced onto the fresh-allocation
    /// path (recycling "fails"), which is counted and recovered, not fatal.
    chaos: Option<&'a FaultPlan>,
}

impl<'a> ArenaPool<'a> {
    /// New pool for a group's buffer specs, sized for the current thread
    /// count.
    pub fn new(specs: &'a [ScratchBufferSpec]) -> Self {
        Self::with_chaos(specs, None)
    }

    /// [`ArenaPool::new`] with an armed fault schedule.
    pub fn with_chaos(specs: &'a [ScratchBufferSpec], chaos: Option<&'a FaultPlan>) -> Self {
        let nworkers = rayon::current_num_threads().max(1);
        ArenaPool {
            specs,
            slots: (0..nworkers).map(|_| Mutex::new(None)).collect(),
            overflow: Mutex::new(Vec::new()),
            stats: (0..nworkers + 1).map(|_| WorkerStats::default()).collect(),
            chaos,
        }
    }

    fn stat_index(&self) -> usize {
        match rayon::current_thread_index() {
            Some(w) if w < self.slots.len() => w,
            _ => self.slots.len(),
        }
    }

    /// Get an arena: the calling worker's affine slot first, then the
    /// overflow stack, then a fresh allocation.
    pub fn get(&self) -> Arena {
        let si = self.stat_index();
        if let Some(c) = self.chaos {
            if c.should_fire(FaultSite::ArenaAlloc) {
                // injected recycling failure: degrade to a fresh arena
                self.stats[si].created.fetch_add(1, Ordering::Relaxed);
                c.record_recovered(FaultSite::ArenaAlloc);
                return Arena::new(self.specs);
            }
        }
        if si < self.slots.len() {
            if let Some(a) = relock(&self.slots[si]).take() {
                self.stats[si].recycled.fetch_add(1, Ordering::Relaxed);
                return a;
            }
        }
        if let Some(a) = relock(&self.overflow).pop() {
            self.stats[si].recycled.fetch_add(1, Ordering::Relaxed);
            return a;
        }
        self.stats[si].created.fetch_add(1, Ordering::Relaxed);
        Arena::new(self.specs)
    }

    /// Return an arena for reuse (to the caller's affine slot when free).
    pub fn put(&self, arena: Arena) {
        if let Some(w) = rayon::current_thread_index() {
            if w < self.slots.len() {
                let mut slot = relock(&self.slots[w]);
                if slot.is_none() {
                    *slot = Some(arena);
                    return;
                }
            }
        }
        relock(&self.overflow).push(arena);
    }

    /// How many arenas were actually created (≈ worker count).
    pub fn created(&self) -> usize {
        self.stats
            .iter()
            .map(|s| s.created.load(Ordering::Relaxed) as usize)
            .sum()
    }

    /// How many `get` calls were served from an affine slot or the
    /// overflow stack rather than a fresh allocation.
    pub fn recycled(&self) -> usize {
        self.stats
            .iter()
            .map(|s| s.recycled.load(Ordering::Relaxed) as usize)
            .sum()
    }

    /// Per-worker `(created, recycled)` pairs: one entry per worker slot
    /// plus a trailing entry for gets made outside any parallel region.
    pub fn per_worker_stats(&self) -> Vec<(u64, u64)> {
        self.stats
            .iter()
            .map(|s| {
                (
                    s.created.load(Ordering::Relaxed),
                    s.recycled.load(Ordering::Relaxed),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<ScratchBufferSpec> {
        vec![
            ScratchBufferSpec {
                extents: vec![10, 20],
                capacity: 200,
            },
            ScratchBufferSpec {
                extents: vec![5, 8],
                capacity: 40,
            },
        ]
    }

    #[test]
    fn arena_matches_specs() {
        let s = specs();
        let pool = ArenaPool::new(&s);
        let mut a = pool.get();
        assert_eq!(a.len(), 2);
        assert_eq!(a.buf(0).len(), 200);
        assert_eq!(a.buf(1).len(), 40);
        assert!(!a.is_empty());
    }

    #[test]
    fn recycling_avoids_creation() {
        let s = specs();
        let pool = ArenaPool::new(&s);
        for _ in 0..10 {
            let a = pool.get();
            pool.put(a);
        }
        assert_eq!(pool.created(), 1);
        assert_eq!(pool.recycled(), 9);
    }

    #[test]
    fn concurrent_get_creates_per_holder() {
        let s = specs();
        let pool = ArenaPool::new(&s);
        let a = pool.get();
        let b = pool.get();
        assert_eq!(pool.created(), 2);
        pool.put(a);
        pool.put(b);
        let _c = pool.get();
        assert_eq!(pool.created(), 2);
        assert_eq!(pool.recycled(), 1);
    }

    #[test]
    fn chaos_forces_fresh_arenas_and_counts_recovery() {
        let s = specs();
        let plan =
            FaultPlan::new(polymg::ChaosOptions::new(9, 1.0).with_sites(polymg::chaos::SITE_ARENA));
        let pool = ArenaPool::with_chaos(&s, Some(&plan));
        for _ in 0..4 {
            let a = pool.get();
            pool.put(a);
        }
        assert_eq!(pool.created(), 4, "every get must degrade to a fresh arena");
        assert_eq!(pool.recycled(), 0);
        let snap = plan.snapshot();
        assert_eq!(snap.fired[FaultSite::ArenaAlloc.index()], 4);
        assert_eq!(snap.recovered[FaultSite::ArenaAlloc.index()], 4);
    }

    #[test]
    fn worker_affine_reuse_inside_pool() {
        let s = specs();
        let tp = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        tp.install(|| {
            use rayon::prelude::*;
            let pool = ArenaPool::new(&s);
            (0..32usize).into_par_iter().for_each(|_| {
                let a = pool.get();
                pool.put(a);
            });
            assert!(pool.created() <= 2, "at most one arena per worker");
            assert_eq!(pool.created() + pool.recycled(), 32);
            let per = pool.per_worker_stats();
            // one slot per worker + the outside-region bucket
            assert_eq!(per.len(), 3);
            let created: u64 = per.iter().map(|(c, _)| c).sum();
            let recycled: u64 = per.iter().map(|(_, r)| r).sum();
            assert_eq!(created as usize, pool.created());
            assert_eq!(recycled as usize, pool.recycled());
        });
    }
}
