//! Per-worker scratchpad arenas.
//!
//! The generated code of Figure 8 declares constant-size scratchpad buffers
//! inside the parallel tile loop — one set per executing thread, on the
//! thread's stack. In this runtime an arena is a heap-allocated set of
//! scratch buffers matching a group's [`polymg::ScratchBufferSpec`]s; a
//! lock-protected stack recycles arenas between tiles so the steady-state
//! cost is a pop/push per tile (no allocation).

use polymg::ScratchBufferSpec;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One worker's scratch buffers for a group (index = scratch buffer id).
#[derive(Debug)]
pub struct Arena {
    bufs: Vec<Vec<f64>>,
}

impl Arena {
    fn new(specs: &[ScratchBufferSpec]) -> Self {
        Arena {
            bufs: specs.iter().map(|s| vec![0.0; s.capacity]).collect(),
        }
    }

    /// Mutable access to buffer `i`.
    pub fn buf(&mut self, i: usize) -> &mut Vec<f64> {
        &mut self.bufs[i]
    }

    /// Split into individually borrowable buffers.
    pub fn bufs_mut(&mut self) -> &mut [Vec<f64>] {
        &mut self.bufs
    }

    /// Read-only view of all buffers (producers of the current stage).
    pub fn bufs(&self) -> &[Vec<f64>] {
        &self.bufs
    }

    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// True when the arena holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }
}

/// A recycling stack of arenas for one group execution.
pub struct ArenaPool<'a> {
    specs: &'a [ScratchBufferSpec],
    stack: Mutex<Vec<Arena>>,
    created: AtomicUsize,
    gets: AtomicUsize,
}

impl<'a> ArenaPool<'a> {
    /// New pool for a group's buffer specs.
    pub fn new(specs: &'a [ScratchBufferSpec]) -> Self {
        ArenaPool {
            specs,
            stack: Mutex::new(Vec::new()),
            created: AtomicUsize::new(0),
            gets: AtomicUsize::new(0),
        }
    }

    /// Get an arena (recycled or fresh).
    pub fn get(&self) -> Arena {
        self.gets.fetch_add(1, Ordering::Relaxed);
        if let Some(a) = self.stack.lock().unwrap().pop() {
            return a;
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        Arena::new(self.specs)
    }

    /// Return an arena for reuse.
    pub fn put(&self, arena: Arena) {
        self.stack.lock().unwrap().push(arena);
    }

    /// How many arenas were actually created (≈ worker count).
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }

    /// How many `get` calls were served from the recycling stack rather
    /// than a fresh allocation.
    pub fn recycled(&self) -> usize {
        self.gets.load(Ordering::Relaxed) - self.created()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs() -> Vec<ScratchBufferSpec> {
        vec![
            ScratchBufferSpec {
                extents: vec![10, 20],
                capacity: 200,
            },
            ScratchBufferSpec {
                extents: vec![5, 8],
                capacity: 40,
            },
        ]
    }

    #[test]
    fn arena_matches_specs() {
        let s = specs();
        let pool = ArenaPool::new(&s);
        let mut a = pool.get();
        assert_eq!(a.len(), 2);
        assert_eq!(a.buf(0).len(), 200);
        assert_eq!(a.buf(1).len(), 40);
        assert!(!a.is_empty());
    }

    #[test]
    fn recycling_avoids_creation() {
        let s = specs();
        let pool = ArenaPool::new(&s);
        for _ in 0..10 {
            let a = pool.get();
            pool.put(a);
        }
        assert_eq!(pool.created(), 1);
        assert_eq!(pool.recycled(), 9);
    }

    #[test]
    fn concurrent_get_creates_per_holder() {
        let s = specs();
        let pool = ArenaPool::new(&s);
        let a = pool.get();
        let b = pool.get();
        assert_eq!(pool.created(), 2);
        pool.put(a);
        pool.put(b);
        let _c = pool.get();
        assert_eq!(pool.created(), 2);
        assert_eq!(pool.recycled(), 1);
    }
}
