//! The pooled memory allocator of §3.2.3.
//!
//! "We use a pooled memory allocator with appropriate interface calls to it
//! generated along with the output code. […] arrays are actually allocated
//! at the entry of the first multigrid cycle, and are all freed after the
//! last call to it."
//!
//! [`BufferPool::allocate`] scans the free list for a buffer of the exact
//! requested length and recycles it, otherwise it allocates fresh (a real
//! `malloc`). [`BufferPool::deallocate`] is a table update returning the
//! buffer to the free list. Statistics track how many `malloc`s the pool
//! avoided and the peak live footprint — the quantities behind Figure 11b.

use gmg_grid::Buffer;
use std::collections::HashMap;

/// Allocation statistics of a pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served by recycling a free buffer.
    pub hits: usize,
    /// Requests that had to allocate fresh memory.
    pub misses: usize,
    /// Bytes currently handed out.
    pub live_bytes: usize,
    /// Maximum of `live_bytes` over the pool's lifetime.
    pub peak_live_bytes: usize,
    /// Total bytes ever allocated fresh (resident footprint of the pool).
    pub allocated_bytes: usize,
    /// Requests served by [`BufferPool::allocate_fallback_fresh`] — the
    /// graceful-degradation path taken when an injected fault (or a real
    /// exhaustion condition) makes the free list unusable. Counted apart
    /// from `hits`/`misses` so chaos runs don't distort the Figure-11b
    /// reuse statistics.
    pub fallback_fresh: usize,
}

/// A size-keyed pool of `f64` buffers.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: HashMap<usize, Vec<Buffer>>,
    stats: PoolStats,
}

impl BufferPool {
    /// New, empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// `pool_allocate`: get a buffer of exactly `len` doubles. Recycled
    /// buffers keep their previous contents — callers must re-initialise
    /// whatever they rely on (the engine refills ghost rings).
    pub fn allocate(&mut self, len: usize) -> Buffer {
        let bytes = len * std::mem::size_of::<f64>();
        self.stats.live_bytes += bytes;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
        if let Some(buf) = self.free.get_mut(&len).and_then(Vec::pop) {
            self.stats.hits += 1;
            buf
        } else {
            self.stats.misses += 1;
            self.stats.allocated_bytes += bytes;
            Buffer::zeroed(len)
        }
    }

    /// Degraded allocation: bypass the free list and malloc fresh, as if
    /// the pool were exhausted. Used to recover from injected pool faults
    /// — the run stays correct (the engine refills ghost rings and every
    /// interior cell is overwritten), it just pays malloc traffic, which
    /// `fallback_fresh` counts. The buffer is a normal pool citizen:
    /// `deallocate` returns it to the free list like any other.
    pub fn allocate_fallback_fresh(&mut self, len: usize) -> Buffer {
        let bytes = len * std::mem::size_of::<f64>();
        self.stats.live_bytes += bytes;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
        self.stats.allocated_bytes += bytes;
        self.stats.fallback_fresh += 1;
        Buffer::zeroed(len)
    }

    /// `pool_deallocate`: return a buffer to the free list.
    pub fn deallocate(&mut self, buf: Buffer) {
        let bytes = buf.byte_len();
        // allocate() derives bytes as len * 8 while this path trusts the
        // buffer's own byte length; they must agree or live_bytes drifts.
        debug_assert_eq!(buf.byte_len(), buf.len() * std::mem::size_of::<f64>());
        self.stats.live_bytes = self.stats.live_bytes.saturating_sub(bytes);
        self.free.entry(buf.len()).or_default().push(buf);
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of buffers sitting in the free list.
    pub fn free_count(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }

    /// Drop all cached buffers (the "freed after the last call" moment).
    /// Statistics survive so a finished experiment can still be reported;
    /// use [`BufferPool::reset_stats`] to start a fresh measurement.
    pub fn clear(&mut self) {
        self.free.clear();
    }

    /// Zero all counters (including `allocated_bytes` / `peak_live_bytes`,
    /// which `clear()` deliberately preserves). Call between experiment
    /// rows that share one process so footprints don't accumulate.
    pub fn reset_stats(&mut self) {
        self.stats = PoolStats {
            live_bytes: self.stats.live_bytes,
            ..PoolStats::default()
        };
    }
}

/// A size-keyed pool of `f32` scratch buffers, used by the mixed-precision
/// chain op ([`crate::ops::mixed`]). Kept apart from [`BufferPool`] so the
/// Figure-11b f64 reuse statistics stay undiluted; recycled buffers keep
/// their previous contents — the op re-initialises ghost rings and fully
/// overwrites every interior cell it reads.
#[derive(Debug, Default)]
pub struct F32Pool {
    free: HashMap<usize, Vec<Vec<f32>>>,
    hits: usize,
    misses: usize,
}

impl F32Pool {
    /// New, empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get a buffer of exactly `len` floats (stale contents on a hit).
    pub fn allocate(&mut self, len: usize) -> Vec<f32> {
        if let Some(buf) = self.free.get_mut(&len).and_then(Vec::pop) {
            self.hits += 1;
            buf
        } else {
            self.misses += 1;
            vec![0.0f32; len]
        }
    }

    /// Return a buffer to the free list.
    pub fn deallocate(&mut self, buf: Vec<f32>) {
        self.free.entry(buf.len()).or_default().push(buf);
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits, self.misses)
    }

    /// Number of buffers sitting in the free list.
    pub fn free_count(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f32_pool_recycles_exact_sizes() {
        let mut p = F32Pool::new();
        let a = p.allocate(64);
        p.deallocate(a);
        let _b = p.allocate(64);
        let _c = p.allocate(65);
        assert_eq!(p.stats(), (1, 2));
        assert_eq!(p.free_count(), 0);
    }

    #[test]
    fn recycles_exact_sizes() {
        let mut p = BufferPool::new();
        let a = p.allocate(100);
        p.deallocate(a);
        let _b = p.allocate(100);
        assert_eq!(p.stats().hits, 1);
        assert_eq!(p.stats().misses, 1);
        assert_eq!(p.stats().allocated_bytes, 800);
    }

    #[test]
    fn different_sizes_do_not_mix() {
        let mut p = BufferPool::new();
        let a = p.allocate(100);
        p.deallocate(a);
        let _b = p.allocate(200);
        assert_eq!(p.stats().hits, 0);
        assert_eq!(p.stats().misses, 2);
    }

    #[test]
    fn peak_tracks_concurrent_liveness() {
        let mut p = BufferPool::new();
        let a = p.allocate(10);
        let b = p.allocate(10);
        assert_eq!(p.stats().live_bytes, 160);
        assert_eq!(p.stats().peak_live_bytes, 160);
        p.deallocate(a);
        p.deallocate(b);
        assert_eq!(p.stats().live_bytes, 0);
        let _c = p.allocate(10);
        assert_eq!(p.stats().peak_live_bytes, 160, "peak must not reset");
        // resident footprint: only 2 buffers were ever malloc'd
        assert_eq!(p.stats().allocated_bytes, 160);
    }

    #[test]
    fn across_cycles_no_new_mallocs() {
        // the §3.2.3 scenario: after the first cycle warms the pool, later
        // cycles allocate nothing new
        let mut p = BufferPool::new();
        for cycle in 0..3 {
            let bufs: Vec<Buffer> = (0..4).map(|i| p.allocate(64 * (i + 1))).collect();
            for b in bufs {
                p.deallocate(b);
            }
            if cycle == 0 {
                assert_eq!(p.stats().misses, 4);
            }
        }
        assert_eq!(p.stats().misses, 4);
        assert_eq!(p.stats().hits, 8);
        assert_eq!(p.free_count(), 4);
    }

    #[test]
    fn fallback_fresh_skips_free_list_but_stays_accounted() {
        let mut p = BufferPool::new();
        let a = p.allocate(100);
        p.deallocate(a);
        // a recycled buffer is available, but the fallback must not touch it
        let b = p.allocate_fallback_fresh(100);
        let s = p.stats();
        assert_eq!((s.hits, s.misses, s.fallback_fresh), (0, 1, 1));
        assert_eq!(s.allocated_bytes, 1600);
        assert_eq!(s.live_bytes, 800);
        assert_eq!(p.free_count(), 1, "free list untouched");
        // the fallback buffer deallocates like any pool buffer
        p.deallocate(b);
        assert_eq!(p.stats().live_bytes, 0);
        assert_eq!(p.free_count(), 2);
    }

    #[test]
    fn clear_empties_free_list() {
        let mut p = BufferPool::new();
        let a = p.allocate(8);
        p.deallocate(a);
        assert_eq!(p.free_count(), 1);
        p.clear();
        assert_eq!(p.free_count(), 0);
    }

    #[test]
    fn reset_stats_starts_a_fresh_measurement() {
        let mut p = BufferPool::new();
        let a = p.allocate(100);
        let b = p.allocate(100);
        p.deallocate(a);
        assert!(p.stats().allocated_bytes > 0 && p.stats().peak_live_bytes > 0);
        p.reset_stats();
        let s = p.stats();
        assert_eq!(
            (s.hits, s.misses, s.allocated_bytes, s.peak_live_bytes),
            (0, 0, 0, 0)
        );
        // still-live bytes survive the reset so deallocate stays consistent
        assert_eq!(s.live_bytes, 800);
        p.deallocate(b);
        assert_eq!(p.stats().live_bytes, 0);
    }
}
