//! `RunDiamondChain`: diamond/split time-tiled execution of a smoother
//! chain with two modulo buffers (the `polymg-dtile-opt+` strategy). The
//! split-tiling band schedule is precomputed at lowering.

use super::{panic_detail, resolve_ins, ResolvedIn};
use crate::kernel::{execute_stage_sel, KernelInput, Space, SpaceMut};
use crate::pool::BufferPool;
use crate::schedule::{fill_ghost, ExecError, Slot};
use crate::tilebuf::SharedOut;
use gmg_grid::Buffer;
use gmg_poly::diamond::TimeBand;
use gmg_trace::StageHandle;
use polymg::schedule::{ExecProgram, StageExec};
use polymg::{FaultPlan, FaultSite};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    program: &ExecProgram,
    stages: &[StageExec],
    schedule: &[TimeBand],
    radius: i64,
    out_slot: usize,
    slots: &mut [Slot<'_>],
    pool: &mut BufferPool,
    pooled: bool,
    spans: &[StageHandle],
    chaos: &FaultPlan,
) -> Result<(), ExecError> {
    if chaos.should_fire(FaultSite::OpDiamond) {
        return Err(ExecError::FaultInjected {
            site: FaultSite::OpDiamond.label(),
            op: "run_diamond",
        });
    }
    let steps = stages.len();
    if steps == 0 {
        return Err(ExecError::PlanViolation("empty diamond chain"));
    }
    let domain = stages[0].domain.clone();
    let nd = domain.ndims();

    let spec = &program.slots[out_slot];
    debug_assert!(
        spec.origin.iter().all(|&o| o == 0),
        "diamond chains assume origin-0 buffers"
    );
    let len = spec.len();
    let ext: Vec<i64> = spec.extents.clone();
    let row_block = spec.extents[1..].iter().product::<i64>() as usize;

    // temp modulo buffer (only needed for ≥2 steps); allocated here rather
    // than via slot ops because its lifetime is exactly this op
    let mut temp = if steps >= 2 {
        let mut b = if pooled && chaos.should_fire(FaultSite::PoolAlloc) {
            // injected pool exhaustion: degrade to a fresh malloc
            let b = pool.allocate_fallback_fresh(len);
            chaos.record_recovered(FaultSite::PoolAlloc);
            b
        } else if pooled {
            pool.allocate(len)
        } else {
            Buffer::zeroed(len)
        };
        fill_ghost(b.as_mut_slice(), &spec.extents, spec.boundary);
        Some(b)
    } else {
        None
    };

    let mut taken = std::mem::replace(&mut slots[out_slot], Slot::Empty);
    let result = (|| -> Result<(), ExecError> {
        let out_data = taken.try_write(&spec.name)?;
        let out_shared = SharedOut::new(out_data);
        let temp_shared = temp.as_mut().map(|b| SharedOut::new(b.as_mut_slice()));
        // buf of a step: parity p writes bufs[p]; arrange last step → out.
        // With a single step both parities resolve to `out` (the off parity
        // is never read or written then), so no unwrap is needed.
        let last_parity = (steps - 1) % 2;
        let temp_or_out = temp_shared.unwrap_or(out_shared);
        let buf_of = |p: usize| -> SharedOut {
            if p == last_parity {
                out_shared
            } else {
                temp_or_out
            }
        };

        // pre-resolve every full-array read
        let resolved: Vec<Vec<ResolvedIn<'_>>> = stages
            .iter()
            .map(|st| resolve_ins(program, st, slots))
            .collect::<Result<_, _>>()?;

        let outer_dom = domain.0[0];
        let tracing = spans.iter().any(StageHandle::is_enabled);

        // Catching here (slot taken, restore pending below) contains worker
        // panics so the slot restore and temp deallocation always run.
        catch_unwind(AssertUnwindSafe(|| {
            for band in schedule {
                for phase in [&band.phase1, &band.phase2] {
                    phase.par_iter().for_each(|trap| {
                        if chaos.should_fire(FaultSite::WorkerPanic) {
                            panic!("chaos: injected worker panic");
                        }
                        for s in 0..band.steps {
                            let t = band.t0 + s;
                            let rows = trap.rows_at(s as i64, outer_dom);
                            if rows.is_empty() {
                                continue;
                            }
                            let t0 = tracing.then(Instant::now);
                            let stage = &stages[t];
                            let kernel = &program.kernels[stage.kernel];

                            // region: these rows × full inner interior
                            let mut region = domain.clone();
                            region.0[0] = rows;

                            // destination: rows block of bufs[t%2]
                            let dst = buf_of(t % 2);
                            let d_off = rows.lo as usize * row_block;
                            let d_len = rows.len() as usize * row_block;
                            // SAFETY: trapezoids of one phase write disjoint
                            // rows at each step (split-tiling invariant), and
                            // cross-step writes to one parity buffer are
                            // disjoint by the band-height clamp.
                            let data = unsafe { dst.segment(d_off, d_len) };
                            let mut origin = vec![0i64; nd];
                            origin[0] = rows.lo;
                            let mut extents = ext.clone();
                            extents[0] = rows.len();
                            let mut out = SpaceMut {
                                data,
                                origin: &origin,
                                extents: &extents,
                            };

                            // inputs: read rows from the previous parity buffer,
                            // dilated by the radius and clamped to the ghost
                            let r_lo = (rows.lo - radius).max(0);
                            let r_hi = (rows.hi + radius).min(ext[0] - 1);
                            let r_off = r_lo as usize * row_block;
                            let r_len = (r_hi - r_lo + 1) as usize * row_block;
                            let mut r_origin = vec![0i64; nd];
                            r_origin[0] = r_lo;
                            let mut r_ext = ext.clone();
                            r_ext[0] = r_hi - r_lo + 1;
                            let (r_origin, r_ext) = (r_origin, r_ext);

                            let mut ins: Vec<KernelInput<'_>> =
                                Vec::with_capacity(resolved[t].len());
                            let mut bnd: Vec<f64> = Vec::with_capacity(resolved[t].len());
                            for r in &resolved[t] {
                                match r {
                                    ResolvedIn::Zero => {
                                        ins.push(KernelInput::Zero);
                                        bnd.push(0.0);
                                    }
                                    ResolvedIn::Array(sp, b) => {
                                        ins.push(KernelInput::Grid(*sp));
                                        bnd.push(*b);
                                    }
                                    ResolvedIn::Local(pi, b) => {
                                        debug_assert_eq!(*pi, t - 1);
                                        bnd.push(*b);
                                        let src = buf_of(pi % 2);
                                        // SAFETY: disjoint from all concurrent
                                        // writes by the band-height clamp.
                                        let pdata = unsafe { src.read_segment(r_off, r_len) };
                                        ins.push(KernelInput::Grid(Space {
                                            data: pdata,
                                            origin: &r_origin,
                                            extents: &r_ext,
                                        }));
                                    }
                                }
                            }
                            execute_stage_sel(
                                stage.sel(),
                                kernel,
                                &region,
                                &mut out,
                                &ins,
                                &bnd,
                            );
                            if let Some(t0) = t0 {
                                spans[t].record(
                                    t0.elapsed().as_nanos() as u64,
                                    1,
                                    region.len() as u64,
                                );
                            }
                        }
                    });
                }
            }
        }))
        .map_err(|p| ExecError::WorkerPanicked {
            op: "run_diamond",
            detail: panic_detail(p),
        })?;
        Ok(())
    })();
    slots[out_slot] = taken;

    if let Some(b) = temp {
        if pooled {
            pool.deallocate(b);
        }
    }
    result
}
