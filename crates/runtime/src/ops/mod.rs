//! Per-op execution: the bodies of the schedule VM's sweep ops. The
//! interpreter loop in [`crate::schedule`] dispatches here; each module
//! implements one `Run*` op of [`polymg::schedule::ExecOp`].
//!
//! Every user-reachable failure is Result-checked *serially* (slot reads,
//! output takes) before any parallel region starts, so the rayon closures
//! themselves are infallible.

pub(crate) mod diamond;
pub(crate) mod mixed;
pub(crate) mod overlapped;
pub(crate) mod untiled;

use crate::kernel::Space;
use crate::schedule::{ExecError, Slot};
use gmg_poly::region::{propagate_regions, GroupEdge, GroupStage, StageRegion};
use gmg_poly::tiling::owned_region;
use gmg_poly::{BoxDomain, Ratio};
use polymg::schedule::{ExecProgram, OpInput, StageExec};
use std::any::Any;

/// Best-effort rendering of a caught panic payload for
/// [`ExecError::WorkerPanicked`] details.
pub(crate) fn panic_detail(p: Box<dyn Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A stage input with its full-array reads resolved to spaces (done before
/// entering any parallel section; op-local inputs stay symbolic).
pub(crate) enum ResolvedIn<'s> {
    Zero,
    /// Full-array view + the producer's boundary value.
    Array(Space<'s>, f64),
    /// Read from op-local storage of the given in-op stage index.
    Local(usize, f64),
}

/// Resolve one stage's inputs against the current slot table.
pub(crate) fn resolve_ins<'s>(
    program: &'s ExecProgram,
    stage: &StageExec,
    slots: &'s [Slot<'_>],
) -> Result<Vec<ResolvedIn<'s>>, ExecError> {
    stage
        .ins
        .iter()
        .map(|inp| match inp {
            OpInput::Zero => Ok(ResolvedIn::Zero),
            OpInput::Local { stage, boundary } => Ok(ResolvedIn::Local(*stage, *boundary)),
            OpInput::Slot { slot, boundary } => {
                let spec = &program.slots[*slot];
                let data = slots[*slot].try_read(&spec.name)?;
                Ok(ResolvedIn::Array(
                    Space {
                        data,
                        origin: &spec.origin,
                        extents: &spec.extents,
                    },
                    *boundary,
                ))
            }
        })
        .collect()
}

/// Per-tile region propagation with owned regions derived from the tile.
pub(crate) fn propagate_for_tile(
    gstages: &[GroupStage],
    edges: &[GroupEdge],
    scales: &[Vec<Ratio>],
    live_out: &[bool],
    tile: &BoxDomain,
) -> Vec<StageRegion> {
    let nd = gstages[0].domain.ndims();
    let tile_stages: Vec<GroupStage> = gstages
        .iter()
        .enumerate()
        .map(|(i, s)| GroupStage {
            domain: s.domain.clone(),
            owned: if live_out[i] {
                owned_region(tile, &scales[i], &s.domain)
            } else {
                BoxDomain::empty(nd)
            },
        })
        .collect();
    propagate_regions(&tile_stages, edges)
}
