//! `RunUntiledStage`: one full-domain sweep, parallel over outer rows.

use super::{panic_detail, resolve_ins, ResolvedIn};
use crate::kernel::{execute_stage_sel, KernelInput, SpaceMut};
use crate::schedule::{ExecError, Slot};
use gmg_poly::Interval;
use gmg_trace::StageHandle;
use polymg::schedule::{ExecProgram, StageExec};
use polymg::{FaultPlan, FaultSite};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

pub(crate) fn run(
    program: &ExecProgram,
    stage: &StageExec,
    slots: &mut [Slot<'_>],
    spans: &[StageHandle],
    chaos: &FaultPlan,
) -> Result<(), ExecError> {
    if chaos.should_fire(FaultSite::OpUntiled) {
        return Err(ExecError::FaultInjected {
            site: FaultSite::OpUntiled.label(),
            op: "run_untiled",
        });
    }
    let a = stage.slot.ok_or(ExecError::PlanViolation(
        "untiled stage without output slot",
    ))?;
    let spec = &program.slots[a];
    let kernel = &program.kernels[stage.kernel];
    let span = spans.first();

    let mut taken = std::mem::replace(&mut slots[a], Slot::Empty);
    let result = (|| -> Result<(), ExecError> {
        let out_data = taken.try_write(&spec.name)?;
        let resolved = resolve_ins(program, stage, slots)?;
        let mut ins = Vec::with_capacity(resolved.len());
        let mut bnd = Vec::with_capacity(resolved.len());
        for r in &resolved {
            match r {
                ResolvedIn::Zero => {
                    ins.push(KernelInput::Zero);
                    bnd.push(0.0);
                }
                ResolvedIn::Array(sp, b) => {
                    ins.push(KernelInput::Grid(*sp));
                    bnd.push(*b);
                }
                ResolvedIn::Local(..) => {
                    return Err(ExecError::PlanViolation(
                        "untiled stage with op-local input",
                    ))
                }
            }
        }

        let ext = &spec.extents;
        let row_block = ext[1..].iter().product::<i64>() as usize;
        let origin0 = spec.origin[0];

        // Split interior rows into more pieces than workers: the extra
        // granularity is what the pool's chunked stealing rebalances when
        // rows are skewed (boundary-heavy stages, NUMA jitter).
        let outer = stage.domain.0[0];
        let nthreads = rayon::current_num_threads().max(1);
        let npieces = if nthreads > 1 { nthreads * 4 } else { 1 };
        let bounds: Vec<(i64, i64)> = rayon::partition_ranges(outer.len() as usize, npieces)
            .into_iter()
            .filter(|r| !r.is_empty())
            .map(|r| (outer.lo + r.start as i64, outer.lo + r.end as i64 - 1))
            .collect();
        // split the buffer at row boundaries (whole outer-dim rows)
        let mut pieces: Vec<(&mut [f64], (i64, i64))> = Vec::with_capacity(bounds.len());
        let mut rest = out_data;
        let mut covered = 0usize;
        for &(lo, hi) in &bounds {
            let begin = (lo - origin0) as usize * row_block;
            let end = (hi - origin0 + 1) as usize * row_block;
            let (_, tail) = rest.split_at_mut(begin - covered);
            let (mine, tail2) = tail.split_at_mut(end - begin);
            pieces.push((mine, (lo, hi)));
            rest = tail2;
            covered = end;
        }

        let region_proto = &stage.domain;
        let t0 = span.is_some_and(StageHandle::is_enabled).then(Instant::now);
        let npieces = pieces.len() as u64;
        // Catching here (inside the op, after the slot was taken and before
        // it is restored below) keeps a worker panic contained: the restore
        // always runs, so no pooled buffer is stranded in a taken slot.
        catch_unwind(AssertUnwindSafe(|| {
            pieces.into_par_iter().for_each(|(data, (lo, hi))| {
                if chaos.should_fire(FaultSite::WorkerPanic) {
                    panic!("chaos: injected worker panic");
                }
                let mut region = region_proto.clone();
                region.0[0] = Interval::new(lo, hi);
                let mut origin = spec.origin.clone();
                origin[0] = lo;
                let mut extents = ext.clone();
                extents[0] = hi - lo + 1;
                let mut out = SpaceMut {
                    data,
                    origin: &origin,
                    extents: &extents,
                };
                execute_stage_sel(stage.sel(), kernel, &region, &mut out, &ins, &bnd);
            });
        }))
        .map_err(|p| ExecError::WorkerPanicked {
            op: "run_untiled",
            detail: panic_detail(p),
        })?;
        if let (Some(span), Some(t0)) = (span, t0) {
            span.record(
                t0.elapsed().as_nanos() as u64,
                npieces,
                stage.domain.len() as u64,
            );
        }
        Ok(())
    })();
    slots[a] = taken;
    result
}
