//! `RunOverlappedGroup`: overlapped-tile execution of a fused group with
//! scratchpads (the paper's §3.1 strategy, geometry precomputed at
//! lowering).

use super::{panic_detail, propagate_for_tile, resolve_ins, ResolvedIn};
use crate::arena::ArenaPool;
use crate::kernel::{
    execute_stage_out_sel, fill_outside, KernelInput, KernelOut, Space, SpaceMut,
};
use crate::schedule::{ExecError, Slot};
use crate::tilebuf::SharedOut;
use gmg_poly::tiling::owned_region;
use gmg_poly::BoxDomain;
use gmg_trace::{StageHandle, Trace};
use polymg::schedule::{ExecProgram, OverlappedGeom, StageExec};
use polymg::{FaultPlan, FaultSite, ScratchBufferSpec};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    program: &ExecProgram,
    stages: &[StageExec],
    live_out: &[bool],
    scratch_slot: &[Option<usize>],
    scratch_buffers: &[ScratchBufferSpec],
    geom: &OverlappedGeom,
    slots: &mut [Slot<'_>],
    spans: &[StageHandle],
    trace: &Trace,
    chaos: &FaultPlan,
) -> Result<(), ExecError> {
    if chaos.should_fire(FaultSite::OpOverlapped) {
        return Err(ExecError::FaultInjected {
            site: FaultSite::OpOverlapped.label(),
            op: "run_overlapped",
        });
    }
    // take all written arrays
    let mut write_arrays = Vec::new();
    for (st, lo) in stages.iter().zip(live_out) {
        if *lo {
            write_arrays.push(st.slot.ok_or(ExecError::PlanViolation(
                "live-out stage without output slot",
            ))?);
        }
    }
    write_arrays.sort_unstable();
    write_arrays.dedup();
    let mut taken: Vec<(usize, Slot<'_>)> = write_arrays
        .iter()
        .map(|&a| (a, std::mem::replace(&mut slots[a], Slot::Empty)))
        .collect();

    let result = (|| -> Result<(), ExecError> {
        // shared outs (checked serially, before any parallelism)
        let mut outs: Vec<(usize, SharedOut)> = Vec::with_capacity(taken.len());
        for (a, s) in taken.iter_mut() {
            outs.push((*a, SharedOut::new(s.try_write(&program.slots[*a].name)?)));
        }
        let shared_of = |a: usize| -> Option<SharedOut> {
            outs.iter().find(|(aa, _)| *aa == a).map(|(_, s)| *s)
        };
        // every live-out stage must map to a taken output (checked here so
        // the tile closures below can use `if let` instead of unwrapping)
        for (st, lo) in stages.iter().zip(live_out) {
            if *lo && st.slot.and_then(shared_of).is_none() {
                return Err(ExecError::PlanViolation(
                    "live-out stage slot was not taken for writing",
                ));
            }
        }

        // pre-resolve every full-array read
        let resolved: Vec<Vec<ResolvedIn<'_>>> = stages
            .iter()
            .map(|st| resolve_ins(program, st, slots))
            .collect::<Result<_, _>>()?;

        // scratch-slot index of each op-local input, in input order per
        // stage — validated serially so the parallel section can't fail
        let local_slot: Vec<Vec<usize>> = resolved
            .iter()
            .map(|rs| {
                rs.iter()
                    .filter_map(|r| match r {
                        ResolvedIn::Local(pi, _) => Some(scratch_slot[*pi].ok_or(
                            ExecError::PlanViolation("op-local producer without scratch slot"),
                        )),
                        _ => None,
                    })
                    .collect::<Result<_, _>>()
            })
            .collect::<Result<_, _>>()?;

        let arena_pool = ArenaPool::with_chaos(scratch_buffers, Some(chaos));
        let tracing = trace.is_enabled();

        // Catching here (after the slots were taken, before they are
        // restored by the caller below) contains worker panics: the slot
        // restore always runs, so no pooled buffer is stranded.
        catch_unwind(AssertUnwindSafe(|| {
            geom.tiles.par_iter().for_each(|tile| {
                if chaos.should_fire(FaultSite::WorkerPanic) {
                    panic!("chaos: injected worker panic");
                }
                let regions =
                    propagate_for_tile(&geom.gstages, &geom.edges, &geom.scales, live_out, tile);
                let mut arena = arena_pool.get();

                for (i, st) in stages.iter().enumerate() {
                    let kernel = &program.kernels[st.kernel];
                    let compute = &regions[i].compute;
                    if compute.is_empty() {
                        continue;
                    }
                    let t0 = tracing.then(Instant::now);
                    let owned = if live_out[i] {
                        owned_region(tile, &geom.scales[i], &st.domain)
                    } else {
                        BoxDomain::empty(compute.ndims())
                    };

                    // take the stage's own scratch buffer out of the arena
                    // first so producer views can borrow the arena immutably
                    let own_slot = scratch_slot[i];
                    let mut own_buf = own_slot.map(|sl| std::mem::take(arena.buf(sl)));

                    // owned metadata for producer scratch views (built first so
                    // the spaces borrowing it live long enough)
                    let mut meta: Vec<(Vec<i64>, Vec<i64>)> = Vec::new();
                    for r in &resolved[i] {
                        if let ResolvedIn::Local(pi, _) = r {
                            let alloc = &regions[*pi].alloc;
                            meta.push((alloc.0.iter().map(|iv| iv.lo).collect(), alloc.extents()));
                        }
                    }
                    let mut ins: Vec<KernelInput<'_>> = Vec::with_capacity(resolved[i].len());
                    let mut bnd: Vec<f64> = Vec::with_capacity(resolved[i].len());
                    let mut mi = 0usize;
                    for r in &resolved[i] {
                        match r {
                            ResolvedIn::Zero => {
                                ins.push(KernelInput::Zero);
                                bnd.push(0.0);
                            }
                            ResolvedIn::Array(sp, b) => {
                                ins.push(KernelInput::Grid(*sp));
                                bnd.push(*b);
                            }
                            ResolvedIn::Local(_, b) => {
                                bnd.push(*b);
                                let buf = local_slot[i][mi];
                                let (o, e) = &meta[mi];
                                mi += 1;
                                let size = e.iter().product::<i64>() as usize;
                                // producers are earlier stages whose buffers are
                                // read-only at this point (own buffer was taken
                                // out above and a producer can never alias it)
                                let pdata = &arena.bufs()[buf][..size];
                                ins.push(KernelInput::Grid(Space {
                                    data: pdata,
                                    origin: o,
                                    extents: e,
                                }));
                            }
                        }
                    }

                    if let Some(own) = own_buf.as_mut() {
                        // compute the full overlap region into the scratchpad
                        let alloc = regions[i].alloc.clone();
                        let origin: Vec<i64> = alloc.0.iter().map(|iv| iv.lo).collect();
                        let extents = alloc.extents();
                        let size = extents.iter().product::<i64>() as usize;
                        {
                            let data = &mut own[..size];
                            {
                                let mut sp = SpaceMut {
                                    data,
                                    origin: &origin,
                                    extents: &extents,
                                };
                                fill_outside(&mut sp, compute, st.boundary);
                            }
                            let out = KernelOut::Dense(SpaceMut {
                                data,
                                origin: &origin,
                                extents: &extents,
                            });
                            execute_stage_out_sel(st.sel(), kernel, compute, out, &ins, &bnd);
                        }
                        if live_out[i] && !owned.is_empty() {
                            // copy the owned sub-region scratch → array (the
                            // live-out/shared-out pairing was validated above)
                            if let Some((a, sh)) =
                                st.slot.and_then(|a| shared_of(a).map(|sh| (a, sh)))
                            {
                                let spec = &program.slots[a];
                                let src = Space {
                                    data: &own[..size],
                                    origin: &origin,
                                    extents: &extents,
                                };
                                // SAFETY: owned boxes partition the array across
                                // tiles.
                                unsafe {
                                    sh.copy_box_from(&src, &spec.extents, &owned);
                                }
                            }
                        }
                    } else {
                        // live-out with no in-group consumer: write the owned
                        // region straight into the shared array (the generated-
                        // code behaviour of Figure 8)
                        debug_assert!(live_out[i]);
                        debug_assert_eq!(&owned, compute);
                        if let Some((a, sh)) = st.slot.and_then(|a| shared_of(a).map(|sh| (a, sh)))
                        {
                            let spec = &program.slots[a];
                            let out = KernelOut::Shared {
                                out: sh,
                                extents: &spec.extents,
                            };
                            execute_stage_out_sel(st.sel(), kernel, compute, out, &ins, &bnd);
                        }
                    }

                    if let (Some(sl), Some(own)) = (own_slot, own_buf) {
                        *arena.buf(sl) = own;
                    }
                    if let Some(t0) = t0 {
                        spans[i].record(t0.elapsed().as_nanos() as u64, 1, compute.len() as u64);
                    }
                }

                arena_pool.put(arena);
            });
        }))
        .map_err(|p| ExecError::WorkerPanicked {
            op: "run_overlapped",
            detail: panic_detail(p),
        })?;
        trace.record_arena(arena_pool.created() as u64, arena_pool.recycled() as u64);
        trace.record_arena_workers(&arena_pool.per_worker_stats());
        Ok(())
    })();

    for (a, s) in taken {
        slots[a] = s;
    }
    result
}
