//! `RunMixedChain`: mixed-precision execution of a smoother chain — the
//! opt-in f32 smoothing tier of `PipelineOptions::mixed_precision`.
//!
//! The f64 operands are narrowed to f32 once per chain invocation (ghost
//! rings included), the chain's k sweeps run on two f32 ping-pong scratch
//! buffers, and only the final sweep's interior is widened back to f64 in
//! the output slot. Residual and correction stages keep running in f64
//! elsewhere in the program, so the cycle's convergence degrades gracefully
//! (validated by convergence-vs-speed rows, never bitwise).
//!
//! Eligibility is proven at plan time (`GroupTiling::MixedChain`): every
//! stage is a single-case linear kernel whose taps are pure offsets without
//! coefficient factors. This op re-checks those invariants and reports
//! violations as `ExecError::PlanViolation` rather than computing garbage.

use super::panic_detail;
use crate::pool::F32Pool;
use crate::schedule::{ExecError, Slot};
use crate::tilebuf::{SharedF32, SharedOut};
use gmg_poly::BoxDomain;
use gmg_trace::StageHandle;
use polymg::schedule::{ExecProgram, OpInput, StageExec};
use polymg::{FaultPlan, FaultSite, KernelBody};
use rayon::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// A stage compiled to the f32 sweep form. Tap sources are indices into
/// the op's source table: `0` is the previous ping-pong buffer, `1 + k`
/// is the k-th narrowed external array.
struct F32Stage {
    bias: f32,
    /// `(source index, flat offset, weight)` per tap.
    taps: Vec<(usize, isize, f32)>,
    /// Ghost value this stage expects in the previous step's buffer
    /// (the producer's boundary, from the `Local` input).
    prev_boundary: f32,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run(
    program: &ExecProgram,
    stages: &[StageExec],
    out_slot: usize,
    slots: &mut [Slot<'_>],
    f32_pool: &mut F32Pool,
    spans: &[StageHandle],
    chaos: &FaultPlan,
) -> Result<(), ExecError> {
    if chaos.should_fire(FaultSite::OpMixed) {
        return Err(ExecError::FaultInjected {
            site: FaultSite::OpMixed.label(),
            op: "run_mixed_chain",
        });
    }
    let steps = stages.len();
    if steps == 0 {
        return Err(ExecError::PlanViolation("empty mixed chain"));
    }
    let spec = &program.slots[out_slot];
    if spec.origin.iter().any(|&o| o != 0) {
        return Err(ExecError::PlanViolation(
            "mixed chains assume origin-0 buffers",
        ));
    }
    let ext = &spec.extents;
    let len = spec.len();
    let nd = ext.len();
    if !(2..=3).contains(&nd) {
        return Err(ExecError::PlanViolation("mixed chain of unsupported rank"));
    }
    let mut strides = vec![1isize; nd];
    for d in (0..nd - 1).rev() {
        strides[d] = strides[d + 1] * ext[d + 1] as isize;
    }

    // Compile every stage to the f32 sweep form, collecting the distinct
    // external slots the chain reads (the shared RHS, typically).
    let mut ext_slots: Vec<usize> = Vec::new();
    let mut cstages: Vec<F32Stage> = Vec::with_capacity(steps);
    for (t, st) in stages.iter().enumerate() {
        let kernel = &program.kernels[st.kernel];
        if kernel.cases.len() != 1 {
            return Err(ExecError::PlanViolation(
                "mixed chain stage is not single-case",
            ));
        }
        let KernelBody::Linear(form) = &kernel.cases[0].body else {
            return Err(ExecError::PlanViolation("mixed chain stage is not linear"));
        };
        let mut taps = Vec::with_capacity(form.taps.len());
        let mut prev_boundary = 0.0f32;
        for tap in &form.taps {
            if tap.cfactor.is_some() {
                return Err(ExecError::PlanViolation(
                    "mixed chain tap with coefficient factor",
                ));
            }
            let mut off = 0isize;
            for (d, a) in tap.access.0.iter().enumerate() {
                if a.num != 1 || a.den != 1 {
                    return Err(ExecError::PlanViolation(
                        "mixed chain tap with non-offset access",
                    ));
                }
                off += a.off as isize * strides[d];
            }
            match &st.ins[tap.slot] {
                // reads of the implicit zero grid contribute nothing
                OpInput::Zero => {}
                OpInput::Slot { slot, .. } => {
                    let sspec = &program.slots[*slot];
                    if sspec.extents != spec.extents || sspec.origin.iter().any(|&o| o != 0) {
                        return Err(ExecError::PlanViolation(
                            "mixed chain input with mismatched geometry",
                        ));
                    }
                    let k = ext_slots
                        .iter()
                        .position(|s| s == slot)
                        .unwrap_or_else(|| {
                            ext_slots.push(*slot);
                            ext_slots.len() - 1
                        });
                    taps.push((1 + k, off, tap.coeff as f32));
                }
                OpInput::Local { stage, boundary } => {
                    if t == 0 || *stage != t - 1 {
                        return Err(ExecError::PlanViolation(
                            "mixed chain local read must target the previous step",
                        ));
                    }
                    prev_boundary = *boundary as f32;
                    taps.push((0, off, tap.coeff as f32));
                }
            }
        }
        cstages.push(F32Stage {
            bias: form.bias as f32,
            taps,
            prev_boundary,
        });
    }

    // f32 scratch: two ping-pong state buffers plus one narrowed copy per
    // external. Recycled buffers arrive stale; ghost rings are refilled
    // per step and every cell the sweeps read is written first.
    let mut prev = f32_pool.allocate(len);
    let mut cur = f32_pool.allocate(len);
    let mut ext_bufs: Vec<Vec<f32>> = ext_slots.iter().map(|_| f32_pool.allocate(len)).collect();

    let mut taken = std::mem::replace(&mut slots[out_slot], Slot::Empty);
    let result = (|| -> Result<(), ExecError> {
        let out_data = taken.try_write(&spec.name)?;
        let ext_srcs: Vec<&[f64]> = ext_slots
            .iter()
            .map(|&s| slots[s].try_read(&program.slots[s].name))
            .collect::<Result<_, _>>()?;
        let tracing = spans.iter().any(StageHandle::is_enabled);

        // Catching here (slot taken, restore pending below) contains worker
        // panics so the slot restore and scratch deallocation always run.
        catch_unwind(AssertUnwindSafe(|| {
            for (buf, src) in ext_bufs.iter_mut().zip(&ext_srcs) {
                narrow_par(buf, src, chaos);
            }
            for (t, cs) in cstages.iter().enumerate() {
                let t0 = tracing.then(Instant::now);
                if t > 0 {
                    fill_ghost_f32(&mut prev, ext, cs.prev_boundary);
                }
                let srcs: Vec<&[f32]> = std::iter::once(prev.as_slice())
                    .chain(ext_bufs.iter().map(|b| b.as_slice()))
                    .collect();
                sweep_step(&stages[t].domain, cs, &srcs, &mut cur, &strides, chaos);
                std::mem::swap(&mut prev, &mut cur);
                if let (Some(span), Some(t0)) = (spans.get(t), t0) {
                    span.record(
                        t0.elapsed().as_nanos() as u64,
                        1,
                        stages[t].domain.len() as u64,
                    );
                }
            }
            // the final sweep's result sits in `prev` after the last swap
            widen_region(out_data, &prev, &stages[steps - 1].domain, &strides, chaos);
        }))
        .map_err(|p| ExecError::WorkerPanicked {
            op: "run_mixed_chain",
            detail: panic_detail(p),
        })?;
        Ok(())
    })();
    slots[out_slot] = taken;

    f32_pool.deallocate(prev);
    f32_pool.deallocate(cur);
    for b in ext_bufs {
        f32_pool.deallocate(b);
    }
    result
}

/// Outer-dimension piece bounds for row-parallel loops (more pieces than
/// workers so chunked stealing can rebalance, as in the untiled op).
fn outer_pieces(outer: gmg_poly::Interval) -> Vec<(i64, i64)> {
    let nthreads = rayon::current_num_threads().max(1);
    let npieces = if nthreads > 1 { nthreads * 4 } else { 1 };
    rayon::partition_ranges(outer.len() as usize, npieces)
        .into_iter()
        .filter(|r| !r.is_empty())
        .map(|r| (outer.lo + r.start as i64, outer.lo + r.end as i64 - 1))
        .collect()
}

/// Call `f` with the flat index of the first interior cell of every row of
/// `region` whose outer coordinate lies in `[olo, ohi]`.
fn for_each_row(
    region: &BoxDomain,
    (olo, ohi): (i64, i64),
    strides: &[isize],
    mut f: impl FnMut(usize),
) {
    let nd = region.ndims();
    let inner_lo = region.0[nd - 1].lo as isize;
    match nd {
        2 => {
            for o in olo..=ohi {
                f((o as isize * strides[0] + inner_lo) as usize);
            }
        }
        3 => {
            for o in olo..=ohi {
                for m in region.0[1].lo..=region.0[1].hi {
                    f((o as isize * strides[0] + m as isize * strides[1] + inner_lo) as usize);
                }
            }
        }
        d => panic!("unsupported rank {d}"),
    }
}

/// One f32 sweep of one chain stage over `region` into `dst`.
fn sweep_step(
    region: &BoxDomain,
    cs: &F32Stage,
    srcs: &[&[f32]],
    dst: &mut [f32],
    strides: &[isize],
    chaos: &FaultPlan,
) {
    if region.is_empty() {
        return;
    }
    let nd = region.ndims();
    let w = region.0[nd - 1].len() as usize;
    let shared = SharedF32::new(dst);
    outer_pieces(region.0[0]).into_par_iter().for_each(|piece| {
        if chaos.should_fire(FaultSite::WorkerPanic) {
            panic!("chaos: injected worker panic");
        }
        let mut rows: Vec<(f32, &[f32])> = Vec::with_capacity(cs.taps.len());
        for_each_row(region, piece, strides, |off0| {
            // SAFETY: pieces cover disjoint outer coordinates, so the row
            // segments written by concurrent workers are disjoint.
            let drow = unsafe { shared.segment(off0, w) };
            rows.clear();
            rows.extend(cs.taps.iter().map(|&(s, off, c)| {
                (c, &srcs[s][(off0 as isize + off) as usize..][..w])
            }));
            run_row_f32(drow, cs.bias, &rows);
        });
    });
}

/// Fused tap accumulation over one unit-stride row. Fixed-arity variants
/// keep the weights in registers and let the autovectorizer produce packed
/// f32 code — the source of the mixed-precision throughput win.
fn run_row_f32(dst: &mut [f32], bias: f32, taps: &[(f32, &[f32])]) {
    macro_rules! fixed {
        ($($k:literal),*) => {
            match taps.len() {
                $(
                    $k => {
                        let mut rs: [(f32, &[f32]); $k] = [(0.0, &[][..]); $k];
                        rs.copy_from_slice(taps);
                        for (i, d) in dst.iter_mut().enumerate() {
                            let mut acc = bias;
                            for (c, r) in &rs {
                                acc += *c * r[i];
                            }
                            *d = acc;
                        }
                    }
                )*
                _ => {
                    for (i, d) in dst.iter_mut().enumerate() {
                        let mut acc = bias;
                        for (c, r) in taps {
                            acc += *c * r[i];
                        }
                        *d = acc;
                    }
                }
            }
        };
    }
    fixed!(1, 2, 3, 4, 5, 6, 7, 8, 9);
}

/// Parallel f64 → f32 narrowing copy (full array, ghosts included).
fn narrow_par(dst: &mut [f32], src: &[f64], chaos: &FaultPlan) {
    debug_assert_eq!(dst.len(), src.len());
    let shared = SharedF32::new(dst);
    let nthreads = rayon::current_num_threads().max(1);
    let pieces: Vec<(usize, usize)> = rayon::partition_ranges(src.len(), nthreads.max(1) * 2)
        .into_iter()
        .filter(|r| !r.is_empty())
        .map(|r| (r.start, r.end))
        .collect();
    pieces.into_par_iter().for_each(|(a, b)| {
        if chaos.should_fire(FaultSite::WorkerPanic) {
            panic!("chaos: injected worker panic");
        }
        // SAFETY: pieces are disjoint index ranges.
        let d = unsafe { shared.segment(a, b - a) };
        for (x, s) in d.iter_mut().zip(&src[a..b]) {
            *x = *s as f32;
        }
    });
}

/// Parallel f32 → f64 widening copy of `region` rows into the output.
fn widen_region(out: &mut [f64], src: &[f32], region: &BoxDomain, strides: &[isize], chaos: &FaultPlan) {
    if region.is_empty() {
        return;
    }
    let nd = region.ndims();
    let w = region.0[nd - 1].len() as usize;
    let shared = SharedOut::new(out);
    outer_pieces(region.0[0]).into_par_iter().for_each(|piece| {
        if chaos.should_fire(FaultSite::WorkerPanic) {
            panic!("chaos: injected worker panic");
        }
        for_each_row(region, piece, strides, |off0| {
            // SAFETY: pieces cover disjoint outer coordinates.
            let drow = unsafe { shared.segment(off0, w) };
            for (x, s) in drow.iter_mut().zip(&src[off0..off0 + w]) {
                *x = f64::from(*s);
            }
        });
    });
}

/// Fill the ghost ring (every cell outside the interior box `[1, e-2]`) of
/// a dense f32 array — the narrow-precision sibling of
/// [`crate::schedule::fill_ghost`].
fn fill_ghost_f32(data: &mut [f32], extents: &[i64], value: f32) {
    let nd = extents.len();
    let inner = extents[nd - 1] as usize;
    let mut coord = vec![0i64; nd - 1];
    for row in data.chunks_mut(inner) {
        let boundary_row = coord
            .iter()
            .zip(extents)
            .any(|(&c, &e)| c == 0 || c == e - 1);
        if boundary_row {
            row.fill(value);
        } else {
            row[0] = value;
            row[inner - 1] = value;
        }
        for d in (0..nd - 1).rev() {
            coord[d] += 1;
            if coord[d] < extents[d] {
                break;
            }
            coord[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghost_fill_touches_only_the_ring() {
        let ext = [4i64, 5];
        let mut a = vec![1.0f32; 20];
        fill_ghost_f32(&mut a, &ext, 9.0);
        for y in 0..4i64 {
            for x in 0..5i64 {
                let ghost = y == 0 || y == 3 || x == 0 || x == 4;
                let v = a[(y * 5 + x) as usize];
                assert_eq!(v, if ghost { 9.0 } else { 1.0 }, "({y},{x})");
            }
        }
    }

    #[test]
    fn row_kernel_matches_dynamic_fallback() {
        let r0: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let r1: Vec<f32> = (0..8).map(|i| (i * i) as f32).collect();
        let taps = vec![(0.5f32, &r0[..]), (0.25f32, &r1[..])];
        let mut fixed = vec![0.0f32; 8];
        run_row_f32(&mut fixed, 1.0, &taps);
        for i in 0..8 {
            let want = 1.0 + 0.5 * r0[i] + 0.25 * r1[i];
            assert_eq!(fixed[i], want);
        }
    }
}
