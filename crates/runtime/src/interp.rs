//! Reference interpreter — the correctness oracle.
//!
//! Executes an unrolled stage graph with the most naive strategy possible:
//! one dense full array per stage, stages in topological order, every point
//! evaluated by walking the expression tree. No tiling, no reuse, no
//! parallelism. Every optimizer variant must reproduce these values to
//! floating-point round-off (verified in the integration suite).

use gmg_ir::{Operand, StageGraph, StageInput, StageKind};
use gmg_poly::BoxDomain;
use std::collections::HashMap;

/// All stage values after a reference run, keyed by stage name. Buffers are
/// dense `(n+2)^d` with the ghost ring holding the boundary value.
pub type ReferenceValues = HashMap<String, Vec<f64>>;

/// Run the graph. `inputs` binds input-stage names to caller buffers (dense,
/// ghost included, sized `(n+2)^d`).
///
/// # Panics
/// Panics on missing/mis-sized inputs or unresolved operands.
pub fn run_reference(graph: &StageGraph, inputs: &[(&str, &[f64])]) -> ReferenceValues {
    let mut values: Vec<Vec<f64>> = Vec::with_capacity(graph.stages.len());

    for stage in &graph.stages {
        let extents: Vec<i64> = stage.domain.extents().iter().map(|e| e + 2).collect();
        let total: i64 = extents.iter().product();
        let buf = match stage.kind {
            StageKind::Input => {
                let (_, data) = inputs
                    .iter()
                    .find(|(n, _)| *n == stage.name)
                    .unwrap_or_else(|| panic!("missing input '{}'", stage.name));
                assert_eq!(
                    data.len(),
                    total as usize,
                    "input '{}' has wrong size",
                    stage.name
                );
                data.to_vec()
            }
            StageKind::Compute => {
                let mut out = vec![stage.boundary.value(); total as usize];
                compute_stage(graph, stage, &values, &extents, &mut out);
                out
            }
        };
        values.push(buf);
    }

    graph
        .stages
        .iter()
        .zip(values)
        .map(|(s, v)| (s.name.clone(), v))
        .collect()
}

fn compute_stage(
    graph: &StageGraph,
    stage: &gmg_ir::Stage,
    values: &[Vec<f64>],
    extents: &[i64],
    out: &mut [f64],
) {
    let nd = stage.domain.ndims();
    let read = |slot: usize, idx: &[i64]| -> f64 {
        match stage.inputs[slot] {
            StageInput::Zero => 0.0,
            StageInput::Stage(p) => {
                let prod = graph.stage(p);
                let pext: Vec<i64> = prod.domain.extents().iter().map(|e| e + 2).collect();
                // ghost ring is index 0 and n+1; anything outside is a
                // validation failure upstream
                let mut flat = 0i64;
                for (d, &x) in idx.iter().enumerate() {
                    assert!(
                        x >= 0 && x < pext[d],
                        "read of '{}' out of bounds at {idx:?}",
                        prod.name
                    );
                    flat = flat * pext[d] + x;
                }
                values[p.0][flat as usize]
            }
        }
    };

    let mut point = vec![0i64; nd];
    iterate(&stage.domain, nd, &mut point, 0, &mut |p| {
        let (_, expr) = stage
            .cases
            .iter()
            .find(|(pat, _)| pat.matches(p))
            .unwrap_or_else(|| panic!("no case covers {p:?} in '{}'", stage.name));
        let v = expr.eval_at(p, &mut |op, idx| {
            let Operand::Slot(k) = op else {
                panic!("unresolved operand in '{}'", stage.name)
            };
            read(*k, idx)
        });
        let mut flat = 0i64;
        for (d, &x) in p.iter().enumerate() {
            flat = flat * extents[d] + x;
        }
        out[flat as usize] = v;
    });
}

fn iterate(
    domain: &BoxDomain,
    nd: usize,
    point: &mut Vec<i64>,
    d: usize,
    f: &mut impl FnMut(&[i64]),
) {
    if d == nd {
        f(point);
        return;
    }
    for v in domain.0[d].lo..=domain.0[d].hi {
        point[d] = v;
        iterate(domain, nd, point, d + 1, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmg_ir::expr::Operand as Op;
    use gmg_ir::stencil::{restrict_full_weighting_2d, stencil_2d};
    use gmg_ir::{ParamBindings, Pipeline, StepCount};

    fn five() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.0],
            vec![0.0, -1.0, 0.0],
        ]
    }

    #[test]
    fn jacobi_step_matches_manual() {
        let n = 7i64;
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, n, 0);
        let f = p.input("F", 2, n, 0);
        let w = 0.8 / 4.0;
        let sm = p.tstencil(
            "sm",
            2,
            n,
            0,
            StepCount::Fixed(1),
            Some(v),
            Op::State.at(&[0, 0])
                - w * (stencil_2d(Op::State, &five(), 1.0) - Op::Func(f).at(&[0, 0])),
        );
        p.mark_output(sm);
        let g = gmg_ir::StageGraph::build(&p, &ParamBindings::new());
        let e = (n + 2) as usize;
        let mut vin = vec![0.0; e * e];
        let mut fin = vec![0.0; e * e];
        for (i, x) in vin.iter_mut().enumerate() {
            *x = ((i * 13) % 7) as f64;
        }
        for (i, x) in fin.iter_mut().enumerate() {
            *x = ((i * 5) % 3) as f64;
        }
        let vals = run_reference(&g, &[("V", &vin), ("F", &fin)]);
        let out = &vals["sm.s0"];
        // check an interior point by hand
        let at = |b: &[f64], y: usize, x: usize| b[y * e + x];
        let (y, x) = (3usize, 4usize);
        let lap = 4.0 * at(&vin, y, x)
            - at(&vin, y, x + 1)
            - at(&vin, y, x - 1)
            - at(&vin, y + 1, x)
            - at(&vin, y - 1, x);
        let want = at(&vin, y, x) - w * (lap - at(&fin, y, x));
        assert!((at(out, y, x) - want).abs() < 1e-13);
        // ghost of output holds the boundary value
        assert_eq!(at(out, 0, 0), 0.0);
    }

    #[test]
    fn restrict_interp_roundtrip_on_smooth_field() {
        // restricting then interpolating a bilinear field reproduces it
        let nf = 15i64;
        let nc = 7i64;
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, nf, 1);
        let r = p.restrict_fn("r", 2, nc, 0, restrict_full_weighting_2d(Op::Func(v)));
        let e = p.interp_fn("e", 2, nf, 1, r);
        p.mark_output(e);
        let g = gmg_ir::StageGraph::build(&p, &ParamBindings::new());
        let ef = (nf + 2) as usize;
        let mut vin = vec![0.0; ef * ef];
        // f(y,x) = y + 2x vanishing on the boundary? It doesn't, but full
        // weighting of a *linear* field is exact away from the boundary.
        for y in 0..ef {
            for x in 0..ef {
                vin[y * ef + x] = y as f64 + 2.0 * x as f64;
            }
        }
        let vals = run_reference(&g, &[("V", &vin)]);
        let out = &vals["e"];
        // interior away from boundary: value reproduced
        for y in 3..=(nf - 3) as usize {
            for x in 3..=(nf - 3) as usize {
                let got = out[y * ef + x];
                let want = y as f64 + 2.0 * x as f64;
                assert!((got - want).abs() < 1e-12, "({y},{x}): {got} vs {want}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "missing input")]
    fn missing_input_panics() {
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, 7, 0);
        let a = p.function("a", 2, 7, 0, Op::Func(v).at(&[0, 0]));
        p.mark_output(a);
        let g = gmg_ir::StageGraph::build(&p, &ParamBindings::new());
        let _ = run_reference(&g, &[]);
    }

    #[test]
    fn zero_state_reads_zero() {
        let mut p = Pipeline::new("t");
        let f = p.input("F", 2, 7, 0);
        let sm = p.tstencil(
            "sm",
            2,
            7,
            0,
            StepCount::Fixed(1),
            None,
            Op::State.at(&[0, 0]) + Op::Func(f).at(&[0, 0]),
        );
        p.mark_output(sm);
        let g = gmg_ir::StageGraph::build(&p, &ParamBindings::new());
        let e = 9usize;
        let fin = vec![2.0; e * e];
        let vals = run_reference(&g, &[("F", &fin)]);
        assert_eq!(vals["sm.s0"][4 * e + 4], 2.0);
    }
}
