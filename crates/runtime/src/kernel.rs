//! Specialised execution of lowered stage kernels over box regions.
//!
//! A kernel executes in a *space*: a flat buffer plus the global coordinate
//! of its first element (`origin`) and its view extents — the same type
//! serves full arrays (origin `[0, …]`, extents `n+2`) and tile scratchpads
//! (origin = the tile's alloc box corner). All coordinates are global grid
//! indices, so tap addressing is uniform regardless of where values live.
//!
//! Linear cases run through a unit-stride fast path (per-row slices with an
//! unrolled tap loop for up to 9 taps) or a generic strided path
//! (restriction's stride-2 reads, interpolation's half-index reads).
//! Non-linear cases are evaluated by the expression interpreter.

// Index-based loops here mirror the math (multi-slice stencil updates); clippy prefers iterators but the indices are the clearer notation.
#![allow(clippy::needless_range_loop)]

use gmg_ir::{Expr, Operand, Parity, ParityPattern};
use gmg_poly::{div_floor, BoxDomain};
use polymg::{KernelBody, KernelImpl, KernelSel, KernelTier, StageKernel};

/// A read-only execution space.
#[derive(Clone, Copy)]
pub struct Space<'a> {
    pub data: &'a [f64],
    /// Global coordinate of `data[0]`, outermost first.
    pub origin: &'a [i64],
    /// View extents, outermost first (row-major, densely packed).
    pub extents: &'a [i64],
}

impl<'a> Space<'a> {
    /// Flat index of a global coordinate; `None` when outside the view.
    pub fn index(&self, p: &[i64]) -> Option<usize> {
        let mut idx = 0usize;
        for (d, &x) in p.iter().enumerate() {
            let rel = x - self.origin[d];
            if rel < 0 || rel >= self.extents[d] {
                return None;
            }
            idx = idx * self.extents[d] as usize + rel as usize;
        }
        Some(idx)
    }

    /// Value at a global coordinate, or `boundary` outside the view.
    pub fn at_or(&self, p: &[i64], boundary: f64) -> f64 {
        self.index(p).map_or(boundary, |i| self.data[i])
    }
}

/// A mutable execution space.
pub struct SpaceMut<'a> {
    pub data: &'a mut [f64],
    pub origin: &'a [i64],
    pub extents: &'a [i64],
}

impl<'a> SpaceMut<'a> {
    /// Reborrow read-only.
    pub fn as_space(&self) -> Space<'_> {
        Space {
            data: self.data,
            origin: self.origin,
            extents: self.extents,
        }
    }
}

/// One input slot of a stage at execution time.
#[derive(Clone, Copy)]
pub enum KernelInput<'a> {
    Grid(Space<'a>),
    /// The implicit zero grid (reads yield the boundary value 0).
    Zero,
}

/// First in-region coordinate matching a parity, and the step (1 or 2).
/// Returns `None` when no point in `[lo, hi]` matches.
fn parity_start(lo: i64, hi: i64, p: Parity) -> Option<(i64, i64)> {
    let (start, step) = match p {
        Parity::Any => (lo, 1),
        Parity::Even => (if lo.rem_euclid(2) == 0 { lo } else { lo + 1 }, 2),
        Parity::Odd => (if lo.rem_euclid(2) == 1 { lo } else { lo + 1 }, 2),
    };
    if start > hi {
        None
    } else {
        Some((start, step))
    }
}

/// Where a kernel writes.
///
/// `Dense` is an exclusive window (scratchpads, untiled sweeps). `Shared`
/// writes straight into a full array that other tiles are writing
/// concurrently — per-row segments are derived from the raw pointer, and
/// soundness rests on the planner's owned-region partition (disjoint row
/// segments per tile).
pub enum KernelOut<'a> {
    Dense(SpaceMut<'a>),
    Shared {
        out: crate::tilebuf::SharedOut,
        /// Dense array extents; the origin is the global zero.
        extents: &'a [i64],
    },
}

impl<'a> KernelOut<'a> {
    #[inline]
    fn origin(&self, d: usize) -> i64 {
        match self {
            KernelOut::Dense(s) => s.origin[d],
            KernelOut::Shared { .. } => 0,
        }
    }

    #[inline]
    fn extent(&self, d: usize) -> i64 {
        match self {
            KernelOut::Dense(s) => s.extents[d],
            KernelOut::Shared { extents, .. } => extents[d],
        }
    }

    /// The row segment `[off, off+len)`.
    #[inline]
    fn row_mut(&mut self, off: usize, len: usize) -> &mut [f64] {
        match self {
            KernelOut::Dense(s) => &mut s.data[off..off + len],
            // SAFETY: concurrent writers cover disjoint owned boxes (see
            // type-level docs); segments of one kernel execution are used
            // strictly sequentially.
            KernelOut::Shared { out, .. } => unsafe { out.segment(off, len) },
        }
    }
}

/// Execute every case of `kernel` over `region` into a dense window.
///
/// `slot_boundary[k]` is the ghost/boundary value of slot `k`'s producer
/// (reads outside a producer's view resolve to it — only the interpreter
/// path can take that branch; linear taps are in-view by construction).
pub fn execute_stage(
    kernel: &StageKernel,
    region: &BoxDomain,
    out: &mut SpaceMut<'_>,
    ins: &[KernelInput<'_>],
    slot_boundary: &[f64],
) {
    execute_stage_impl(KernelImpl::Generic, kernel, region, out, ins, slot_boundary);
}

/// [`execute_stage`] with an explicit specialized-kernel selection (the
/// `StageExec::impl_tag` chosen at schedule lowering), at the scalar tier.
pub fn execute_stage_impl(
    impl_tag: KernelImpl,
    kernel: &StageKernel,
    region: &BoxDomain,
    out: &mut SpaceMut<'_>,
    ins: &[KernelInput<'_>],
    slot_boundary: &[f64],
) {
    execute_stage_sel(
        KernelSel::scalar(impl_tag),
        kernel,
        region,
        out,
        ins,
        slot_boundary,
    );
}

/// [`execute_stage`] with a full kernel selection (family + tier + block).
pub fn execute_stage_sel(
    sel: KernelSel,
    kernel: &StageKernel,
    region: &BoxDomain,
    out: &mut SpaceMut<'_>,
    ins: &[KernelInput<'_>],
    slot_boundary: &[f64],
) {
    let dense = KernelOut::Dense(SpaceMut {
        data: &mut *out.data,
        origin: out.origin,
        extents: out.extents,
    });
    execute_stage_out_sel(sel, kernel, region, dense, ins, slot_boundary);
}

/// Execute every case of `kernel` over `region` into any [`KernelOut`].
pub fn execute_stage_out(
    kernel: &StageKernel,
    region: &BoxDomain,
    out: KernelOut<'_>,
    ins: &[KernelInput<'_>],
    slot_boundary: &[f64],
) {
    execute_stage_out_sel(KernelSel::generic(), kernel, region, out, ins, slot_boundary);
}

/// [`execute_stage_out`] with an explicit specialized-kernel family, at the
/// scalar tier (the PR-3 entry point, kept for differential tests and
/// callers that pre-date tiers).
pub fn execute_stage_out_impl(
    impl_tag: KernelImpl,
    kernel: &StageKernel,
    region: &BoxDomain,
    out: KernelOut<'_>,
    ins: &[KernelInput<'_>],
    slot_boundary: &[f64],
) {
    execute_stage_out_sel(
        KernelSel::scalar(impl_tag),
        kernel,
        region,
        out,
        ins,
        slot_boundary,
    );
}

/// [`execute_stage_out`] with a full kernel selection.
///
/// A non-[`Generic`](KernelImpl::Generic) family routes each linear case to
/// a dedicated row kernel whose tap arity is a compile-time constant —
/// scalar-unrolled ([`spec_row`]), lane-safe SIMD ([`lane_row`]) or
/// reassociating SIMD ([`fast_row`]) depending on the selection's tier —
/// provided the case's arity has a specialized instance; anything else
/// (interpreted cases, arities above the tables) falls back to the generic
/// [`run_row`] and is counted in the histograms' `generic`/`scalar`
/// buckets. The scalar and lane-safe tiers accumulate each output point's
/// taps in the generic order, so their results are bitwise identical to the
/// generic path; only the fast-math tier reassociates.
pub fn execute_stage_out_sel(
    sel: KernelSel,
    kernel: &StageKernel,
    region: &BoxDomain,
    mut out: KernelOut<'_>,
    ins: &[KernelInput<'_>],
    slot_boundary: &[f64],
) {
    if region.is_empty() {
        return;
    }
    for case in &kernel.cases {
        match &case.body {
            KernelBody::Linear(form) => {
                let arity = form.taps.len();
                let row = if sel.impl_tag != KernelImpl::Generic {
                    match sel.tier {
                        KernelTier::Scalar => spec_row_fn(arity),
                        KernelTier::LaneSafe => lane_row_fn(arity),
                        KernelTier::FastMath => fast_row_fn(arity),
                    }
                } else {
                    None
                };
                let bucket = if row.is_some() { sel.impl_tag.index() } else { 0 };
                let tier = if row.is_some() { sel.tier.index() } else { 0 };
                gmg_trace::dispatch::record_impl(bucket, 1);
                gmg_trace::dispatch::record_tier(tier, 1);
                // Cache blocking only pays off (and is only wired up) for
                // the lane tiers; the scalar/generic paths keep flat rows.
                let xblock = if row.is_some() && sel.tier != KernelTier::Scalar {
                    sel.xblock
                } else {
                    0
                };
                match region.ndims() {
                    2 => linear_2d(form, &case.pattern, region, &mut out, ins, row, xblock),
                    3 => linear_3d(form, &case.pattern, region, &mut out, ins, row, xblock),
                    d => panic!("unsupported rank {d}"),
                }
            }
            KernelBody::Interpreted(expr) => {
                gmg_trace::dispatch::record_impl(0, 1);
                gmg_trace::dispatch::record_tier(0, 1);
                interpret_case(expr, &case.pattern, region, &mut out, ins, slot_boundary)
            }
        }
    }
}

/// Runtime addressing of a tap's coefficient-grid factor: the effective
/// weight at inner-loop index `k` is `coeff · data[base + k·slope]`.
/// Row-advance deltas are carried inline so the sweep loops can advance the
/// factor base alongside the tap base.
#[derive(Clone, Copy)]
struct CfTap<'a> {
    data: &'a [f64],
    base: usize,
    slope: usize,
    /// Base increment per row advance (innermost outer dimension).
    dy: usize,
    /// 3-D only: base correction applied at each plane wrap.
    dz_wrap: i64,
}

/// Per-tap runtime addressing: value at inner-loop index `k` is
/// `data[base + k·slope]`, weighted by `coeff` (times the coefficient-grid
/// factor when `cfac` is set — the variable-coefficient path).
struct RtTap<'a> {
    data: &'a [f64],
    base: usize,
    slope: usize,
    coeff: f64,
    cfac: Option<CfTap<'a>>,
}

impl<'a> RtTap<'a> {
    /// The effective weight at inner-loop index `k`.
    #[inline(always)]
    fn weight(&self, k: usize) -> f64 {
        match &self.cfac {
            // `coeff · 1.0 == coeff` bitwise, so a ones grid reproduces the
            // constant-coefficient accumulation exactly.
            Some(cf) => self.coeff * cf.data[cf.base + k * cf.slope],
            None => self.coeff,
        }
    }
}

/// Row base index (everything except the innermost dim) of an access into
/// `input` for outer coordinates `outer` (length = rank-1).
fn tap_row_base(access: &gmg_ir::Access, input: &Space<'_>, outer: &[i64]) -> usize {
    let nd = input.origin.len();
    debug_assert_eq!(outer.len(), nd - 1);
    let mut idx: i64 = 0;
    for d in 0..nd - 1 {
        let a = access.0[d];
        let coord = div_floor(a.num * outer[d] + a.off, a.den);
        let rel = coord - input.origin[d];
        debug_assert!(rel >= 0 && rel < input.extents[d], "tap row out of view");
        idx = idx * input.extents[d] + rel;
    }
    // innermost handled by base/slope; here add the row start
    (idx * input.extents[nd - 1]) as usize
}

/// How far a tap's input coordinate moves (in that dimension's units) when
/// the output coordinate advances by `step`: `num·step` for `/1` accesses,
/// `step/2` for parity-pinned `/2` accesses.
#[inline]
fn axis_coord_delta(a: &gmg_ir::expr::AxisAccess, step: i64) -> i64 {
    if a.den == 2 {
        debug_assert_eq!(step % 2, 0, "/2 access requires an even step");
        step / 2
    } else {
        a.num * step
    }
}

/// Innermost-dim base and slope for an access given the x start and step.
fn tap_x_base_slope(access: &gmg_ir::Access, input: &Space<'_>, x0: i64, sx: i64) -> (usize, usize) {
    let nd = input.origin.len();
    let a = access.0[nd - 1];
    let first = div_floor(a.num * x0 + a.off, a.den) - input.origin[nd - 1];
    debug_assert!(first >= 0, "tap x base out of view");
    let slope = if a.den == 2 {
        debug_assert_eq!(sx, 2, "/2 access requires parity-stepped loop");
        1
    } else {
        (a.num * sx) as usize
    };
    (first as usize, slope)
}

/// Which [`run_row`] code path a kernel case with these taps will take.
/// Mirrors the dispatch conditions in `run_row` exactly; evaluated once per
/// case execution (not per row) to feed the `gmg_trace::dispatch` histogram.
fn dispatch_kind(out_slope: usize, taps: &[RtTap<'_>]) -> gmg_trace::dispatch::Kind {
    use gmg_trace::dispatch::Kind;
    if taps.iter().any(|t| t.cfac.is_some()) {
        return Kind::VarCoef;
    }
    if out_slope != 1 || taps.iter().any(|t| t.slope != 1) {
        return Kind::Strided;
    }
    if taps.len() <= 28 {
        return Kind::UnitUnrolled;
    }
    let mut nspans = 0usize;
    let mut j = 0;
    while j < taps.len() {
        let c = taps[j].coeff;
        let mut k = j + 1;
        while k < taps.len() && taps[k].coeff == c {
            k += 1;
        }
        nspans += 1;
        j = k;
    }
    if nspans * 2 <= taps.len() {
        Kind::UnitFactored
    } else {
        Kind::UnitFallback
    }
}

/// The row-kernel signature shared by the generic [`run_row`] and the
/// specialized [`spec_row`] instances: write `count` outputs spaced
/// `out_slope` apart from `bias` plus the tap sums.
type RowFn = for<'a, 'b, 'c> fn(&'a mut [f64], usize, usize, f64, &'b [RtTap<'c>]);

/// Specialized row kernel with the tap arity `K` fixed at compile time —
/// the "dedicated unrolled kernel" a non-generic `KernelImpl` dispatches
/// to. Both paths visit taps in exactly the order [`run_row`] does (the
/// unit path mirrors its `fixed!` loops, the strided path its per-tap
/// loop), keeping specialization bitwise-transparent; the constant arity
/// lets LLVM keep every row pointer and coefficient in registers and
/// vectorize the inner loop without runtime tap-count checks.
fn spec_row<const K: usize>(
    out_row: &mut [f64],
    out_slope: usize,
    count: usize,
    bias: f64,
    taps: &[RtTap<'_>],
) {
    debug_assert_eq!(taps.len(), K);
    // the classifier refuses variable-coefficient stages, so specialized
    // kernels never see a coefficient factor
    debug_assert!(taps.iter().all(|t| t.cfac.is_none()));
    if out_slope == 1 && taps.iter().all(|t| t.slope == 1) {
        let out_row = &mut out_row[..count];
        let mut rows: [&[f64]; K] = [&[]; K];
        let mut coeff = [0.0f64; K];
        for (j, t) in taps.iter().enumerate() {
            rows[j] = &t.data[t.base..t.base + count];
            coeff[j] = t.coeff;
        }
        for i in 0..count {
            let mut acc = bias;
            for j in 0..K {
                acc += coeff[j] * rows[j][i];
            }
            out_row[i] = acc;
        }
        return;
    }
    // strided (restrict / interp): arity still unrolled
    for k in 0..count {
        let mut acc = bias;
        for j in 0..K {
            let t = &taps[j];
            acc += t.coeff * t.data[t.base + k * t.slope];
        }
        out_row[k * out_slope] = acc;
    }
}

/// The specialized row kernel for a tap arity, if one is instantiated.
/// The table stops at `polymg::specialize::MAX_SPEC_TAPS` (= 28) — beyond
/// that the generic path may choose coefficient factoring, which sums in a
/// different order, so the classifier never tags such kernels anyway.
fn spec_row_fn(arity: usize) -> Option<RowFn> {
    macro_rules! table {
        ($($k:literal)*) => {
            match arity {
                $($k => Some(spec_row::<$k> as RowFn),)*
                _ => None,
            }
        };
    }
    table!(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28)
}

// ---------------------------------------------------------------------------
// Lane tiers: explicit-width SIMD row kernels
// ---------------------------------------------------------------------------

/// f64 lanes per inner-loop step of the lane tiers. Eight lanes is one
/// AVX-512 register / two AVX2 registers; the fixed-width array accumulators
/// below lower to full-width vector ops under either ISA.
pub const LANES: usize = 8;

/// Host vector ISA, detected once. The lane bodies are compiled three ways
/// (baseline / AVX2 / AVX-512) via `#[target_feature]` multiversioning —
/// without this the workspace's baseline `x86-64` target would pin every
/// lane loop to 2-wide SSE2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Isa {
    Baseline,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

fn isa() -> Isa {
    use std::sync::OnceLock;
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(|| {
        // `GMG_SIMD_ISA=baseline|avx2|avx512` pins the lane codepath —
        // for differential debugging and for overriding the default width
        // choice. A pin is honored only if the host has the features.
        //
        // AVX2 is preferred even where AVX-512 is available: on the
        // Skylake-SP generation, 512-bit ops trigger license-based
        // frequency downclocking that penalizes the scalar/dispatch code
        // between row calls, and measured chain throughput was
        // consistently better at 256-bit. `GMG_SIMD_ISA=avx512` opts into
        // zmm for hosts (Ice Lake+) where the license penalty is gone.
        let pin = std::env::var("GMG_SIMD_ISA").ok();
        let pin = pin.as_deref();
        if pin == Some("baseline") {
            return Isa::Baseline;
        }
        #[cfg(target_arch = "x86_64")]
        {
            let has512 = std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("fma");
            // fma alongside avx2: the fast-math variants use `mul_add`,
            // which must never fall back to the (slow) software fma.
            let has2 = std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma");
            if has512 && pin == Some("avx512") {
                return Isa::Avx512;
            }
            if has2 {
                return Isa::Avx2;
            }
            if has512 {
                return Isa::Avx512;
            }
        }
        Isa::Baseline
    })
}

/// Lane-safe unit-stride body: vectorizes ACROSS output points. Each lane
/// computes its own point's full tap sum in exactly the generic order
/// (`bias + c₀·r₀[i] + c₁·r₁[i] + …`), and the scalar remainder loop is
/// that same order — so this body is bitwise-identical to [`run_row`]'s
/// unit path for every element. (Rust never contracts `a*b + c` into an
/// fma, so enabling wider ISAs cannot change the rounding.)
#[inline(always)]
fn lane_safe_body<const K: usize>(
    out_row: &mut [f64],
    count: usize,
    bias: f64,
    rows: &[&[f64]; K],
    coeff: &[f64; K],
) {
    let mut i = 0;
    while i + LANES <= count {
        let mut acc = [bias; LANES];
        for j in 0..K {
            let c = coeff[j];
            let r = &rows[j][i..i + LANES];
            for l in 0..LANES {
                acc[l] += c * r[l];
            }
        }
        out_row[i..i + LANES].copy_from_slice(&acc);
        i += LANES;
    }
    while i < count {
        let mut acc = bias;
        for j in 0..K {
            acc += coeff[j] * rows[j][i];
        }
        out_row[i] = acc;
        i += 1;
    }
}

/// Reassociating unit-stride body: the per-point tap chain is split into
/// two independent partial sums (breaking the serial add dependence the
/// lane-safe body carries), folded as `bias + (even + odd)` at the end, and
/// fused multiply-adds are used when `FMA` (only instantiated inside
/// `target_feature(fma)` variants — software fma would be a libm call per
/// tap). Results differ from the generic path at round-off level; the ULP
/// differential suite bounds the divergence.
#[inline(always)]
fn fast_math_body<const K: usize, const FMA: bool>(
    out_row: &mut [f64],
    count: usize,
    bias: f64,
    rows: &[&[f64]; K],
    coeff: &[f64; K],
) {
    let mut i = 0;
    while i + LANES <= count {
        let mut acc0 = [0.0f64; LANES];
        let mut acc1 = [0.0f64; LANES];
        let mut j = 0;
        while j + 1 < K {
            let (c0, c1) = (coeff[j], coeff[j + 1]);
            let r0 = &rows[j][i..i + LANES];
            let r1 = &rows[j + 1][i..i + LANES];
            for l in 0..LANES {
                if FMA {
                    acc0[l] = c0.mul_add(r0[l], acc0[l]);
                    acc1[l] = c1.mul_add(r1[l], acc1[l]);
                } else {
                    acc0[l] += c0 * r0[l];
                    acc1[l] += c1 * r1[l];
                }
            }
            j += 2;
        }
        if j < K {
            let c = coeff[j];
            let r = &rows[j][i..i + LANES];
            for l in 0..LANES {
                if FMA {
                    acc0[l] = c.mul_add(r[l], acc0[l]);
                } else {
                    acc0[l] += c * r[l];
                }
            }
        }
        for l in 0..LANES {
            out_row[i + l] = bias + (acc0[l] + acc1[l]);
        }
        i += LANES;
    }
    while i < count {
        let (mut acc0, mut acc1) = (0.0f64, 0.0f64);
        let mut j = 0;
        while j + 1 < K {
            if FMA {
                acc0 = coeff[j].mul_add(rows[j][i], acc0);
                acc1 = coeff[j + 1].mul_add(rows[j + 1][i], acc1);
            } else {
                acc0 += coeff[j] * rows[j][i];
                acc1 += coeff[j + 1] * rows[j + 1][i];
            }
            j += 2;
        }
        if j < K {
            if FMA {
                acc0 = coeff[j].mul_add(rows[j][i], acc0);
            } else {
                acc0 += coeff[j] * rows[j][i];
            }
        }
        out_row[i] = bias + (acc0 + acc1);
        i += 1;
    }
}

// ISA-multiversioned variants: same `#[inline(always)]` body recompiled
// under wider target features, selected once per row through [`isa`].
// SAFETY (all four): only called after `is_x86_feature_detected!` confirmed
// the enabled features at [`isa`] init.

// The lane-safe wide variants are also explicit-intrinsic: each vector
// lane performs `((bias + c₀·r₀) + c₁·r₁) + …` — the exact scalar
// association, separate mul then add, never fma — so every lane is
// bitwise-equal to the generic per-point chain. Hand-written packed ops
// sidestep the autovectorizer's shuffle-heavy lowering of the portable
// lane-array body.

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn lane_safe_avx2<const K: usize>(
    out_row: &mut [f64],
    count: usize,
    bias: f64,
    rows: &[&[f64]; K],
    coeff: &[f64; K],
) {
    use core::arch::x86_64::*;
    let b = _mm256_set1_pd(bias);
    let mut i = 0;
    // Two vectors per iteration: each point's add chain is serial (the
    // bitwise contract), but chains of different points are independent —
    // interleaving two hides the add latency without reassociating.
    while i + 8 <= count {
        let mut acc0 = b;
        let mut acc1 = b;
        for j in 0..K {
            let c = _mm256_set1_pd(coeff[j]);
            let p = rows[j].as_ptr().add(i);
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(c, _mm256_loadu_pd(p)));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(c, _mm256_loadu_pd(p.add(4))));
        }
        _mm256_storeu_pd(out_row.as_mut_ptr().add(i), acc0);
        _mm256_storeu_pd(out_row.as_mut_ptr().add(i + 4), acc1);
        i += 8;
    }
    while i + 4 <= count {
        let mut acc = b;
        for j in 0..K {
            acc = _mm256_add_pd(
                acc,
                _mm256_mul_pd(
                    _mm256_set1_pd(coeff[j]),
                    _mm256_loadu_pd(rows[j].as_ptr().add(i)),
                ),
            );
        }
        _mm256_storeu_pd(out_row.as_mut_ptr().add(i), acc);
        i += 4;
    }
    lane_safe_tail::<K>(out_row, i, count, bias, rows, coeff);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn lane_safe_avx512<const K: usize>(
    out_row: &mut [f64],
    count: usize,
    bias: f64,
    rows: &[&[f64]; K],
    coeff: &[f64; K],
) {
    use core::arch::x86_64::*;
    let b = _mm512_set1_pd(bias);
    let mut i = 0;
    // Same two-chain interleave as the AVX2 body (see comment there).
    while i + 16 <= count {
        let mut acc0 = b;
        let mut acc1 = b;
        for j in 0..K {
            let c = _mm512_set1_pd(coeff[j]);
            let p = rows[j].as_ptr().add(i);
            acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(c, _mm512_loadu_pd(p)));
            acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(c, _mm512_loadu_pd(p.add(8))));
        }
        _mm512_storeu_pd(out_row.as_mut_ptr().add(i), acc0);
        _mm512_storeu_pd(out_row.as_mut_ptr().add(i + 8), acc1);
        i += 16;
    }
    while i + 8 <= count {
        let mut acc = b;
        for j in 0..K {
            acc = _mm512_add_pd(
                acc,
                _mm512_mul_pd(
                    _mm512_set1_pd(coeff[j]),
                    _mm512_loadu_pd(rows[j].as_ptr().add(i)),
                ),
            );
        }
        _mm512_storeu_pd(out_row.as_mut_ptr().add(i), acc);
        i += 8;
    }
    lane_safe_tail::<K>(out_row, i, count, bias, rows, coeff);
}

/// Scalar remainder of the wide lane-safe kernels — the generic tap chain
/// verbatim, so the tail is bitwise-identical too.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn lane_safe_tail<const K: usize>(
    out_row: &mut [f64],
    from: usize,
    count: usize,
    bias: f64,
    rows: &[&[f64]; K],
    coeff: &[f64; K],
) {
    for i in from..count {
        let mut acc = bias;
        for j in 0..K {
            acc += coeff[j] * rows[j][i];
        }
        out_row[i] = acc;
    }
}

// The fast-math wide variants are written with explicit (stable) packed
// intrinsics rather than through `fast_math_body`: LLVM's SLP pass does
// not re-vectorize the `mul_add` lane arrays and would otherwise emit a
// fully scalar-fma unroll — measured ~3× slower than the lane-safe tier
// instead of faster.

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn fast_math_avx2<const K: usize>(
    out_row: &mut [f64],
    count: usize,
    bias: f64,
    rows: &[&[f64]; K],
    coeff: &[f64; K],
) {
    use core::arch::x86_64::*;
    let b = _mm256_set1_pd(bias);
    let mut i = 0;
    while i + 4 <= count {
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut j = 0;
        while j + 1 < K {
            acc0 = _mm256_fmadd_pd(
                _mm256_set1_pd(coeff[j]),
                _mm256_loadu_pd(rows[j].as_ptr().add(i)),
                acc0,
            );
            acc1 = _mm256_fmadd_pd(
                _mm256_set1_pd(coeff[j + 1]),
                _mm256_loadu_pd(rows[j + 1].as_ptr().add(i)),
                acc1,
            );
            j += 2;
        }
        if j < K {
            acc0 = _mm256_fmadd_pd(
                _mm256_set1_pd(coeff[j]),
                _mm256_loadu_pd(rows[j].as_ptr().add(i)),
                acc0,
            );
        }
        _mm256_storeu_pd(
            out_row.as_mut_ptr().add(i),
            _mm256_add_pd(b, _mm256_add_pd(acc0, acc1)),
        );
        i += 4;
    }
    fast_math_tail::<K>(out_row, i, count, bias, rows, coeff);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,fma")]
unsafe fn fast_math_avx512<const K: usize>(
    out_row: &mut [f64],
    count: usize,
    bias: f64,
    rows: &[&[f64]; K],
    coeff: &[f64; K],
) {
    use core::arch::x86_64::*;
    let b = _mm512_set1_pd(bias);
    let mut i = 0;
    while i + 8 <= count {
        let mut acc0 = _mm512_setzero_pd();
        let mut acc1 = _mm512_setzero_pd();
        let mut j = 0;
        while j + 1 < K {
            acc0 = _mm512_fmadd_pd(
                _mm512_set1_pd(coeff[j]),
                _mm512_loadu_pd(rows[j].as_ptr().add(i)),
                acc0,
            );
            acc1 = _mm512_fmadd_pd(
                _mm512_set1_pd(coeff[j + 1]),
                _mm512_loadu_pd(rows[j + 1].as_ptr().add(i)),
                acc1,
            );
            j += 2;
        }
        if j < K {
            acc0 = _mm512_fmadd_pd(
                _mm512_set1_pd(coeff[j]),
                _mm512_loadu_pd(rows[j].as_ptr().add(i)),
                acc0,
            );
        }
        _mm512_storeu_pd(
            out_row.as_mut_ptr().add(i),
            _mm512_add_pd(b, _mm512_add_pd(acc0, acc1)),
        );
        i += 8;
    }
    fast_math_tail::<K>(out_row, i, count, bias, rows, coeff);
}

/// Scalar remainder of the wide fast-math kernels: same two-partial-sum
/// association and fma contraction as the vector loop, so the tail stays
/// inside the same rounding model (`#[inline(always)]` into the
/// fma-enabled callers keeps `mul_add` a hardware instruction).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn fast_math_tail<const K: usize>(
    out_row: &mut [f64],
    from: usize,
    count: usize,
    bias: f64,
    rows: &[&[f64]; K],
    coeff: &[f64; K],
) {
    for i in from..count {
        let (mut acc0, mut acc1) = (0.0f64, 0.0f64);
        let mut j = 0;
        while j + 1 < K {
            acc0 = coeff[j].mul_add(rows[j][i], acc0);
            acc1 = coeff[j + 1].mul_add(rows[j + 1][i], acc1);
            j += 2;
        }
        if j < K {
            acc0 = coeff[j].mul_add(rows[j][i], acc0);
        }
        out_row[i] = bias + (acc0 + acc1);
    }
}

/// Lane-safe SIMD row kernel (the [`KernelTier::LaneSafe`] dispatch
/// target). The unit path runs the multiversioned [`lane_safe_body`];
/// strided accesses (restrict / interp reads) keep the unrolled scalar
/// loop — their gathers don't vectorize profitably.
fn lane_row<const K: usize>(
    out_row: &mut [f64],
    out_slope: usize,
    count: usize,
    bias: f64,
    taps: &[RtTap<'_>],
) {
    debug_assert_eq!(taps.len(), K);
    if out_slope == 1 && taps.iter().all(|t| t.slope == 1) {
        let out_row = &mut out_row[..count];
        let mut rows: [&[f64]; K] = [&[]; K];
        let mut coeff = [0.0f64; K];
        for (j, t) in taps.iter().enumerate() {
            rows[j] = &t.data[t.base..t.base + count];
            coeff[j] = t.coeff;
        }
        match isa() {
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => unsafe { lane_safe_avx512::<K>(out_row, count, bias, &rows, &coeff) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => unsafe { lane_safe_avx2::<K>(out_row, count, bias, &rows, &coeff) },
            Isa::Baseline => lane_safe_body::<K>(out_row, count, bias, &rows, &coeff),
        }
        return;
    }
    spec_row::<K>(out_row, out_slope, count, bias, taps)
}

/// Reassociating SIMD row kernel (the [`KernelTier::FastMath`] dispatch
/// target). Strided accesses fall back to the unrolled scalar loop exactly
/// like [`lane_row`] — so strided cases stay bitwise-identical even under
/// fast-math.
fn fast_row<const K: usize>(
    out_row: &mut [f64],
    out_slope: usize,
    count: usize,
    bias: f64,
    taps: &[RtTap<'_>],
) {
    debug_assert_eq!(taps.len(), K);
    if out_slope == 1 && taps.iter().all(|t| t.slope == 1) {
        let out_row = &mut out_row[..count];
        let mut rows: [&[f64]; K] = [&[]; K];
        let mut coeff = [0.0f64; K];
        for (j, t) in taps.iter().enumerate() {
            rows[j] = &t.data[t.base..t.base + count];
            coeff[j] = t.coeff;
        }
        match isa() {
            #[cfg(target_arch = "x86_64")]
            Isa::Avx512 => unsafe { fast_math_avx512::<K>(out_row, count, bias, &rows, &coeff) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx2 => unsafe { fast_math_avx2::<K>(out_row, count, bias, &rows, &coeff) },
            Isa::Baseline => fast_math_body::<K, false>(out_row, count, bias, &rows, &coeff),
        }
        return;
    }
    spec_row::<K>(out_row, out_slope, count, bias, taps)
}

/// The lane-safe row kernel for a tap arity, if one is instantiated (same
/// 1..=28 table as [`spec_row_fn`]).
fn lane_row_fn(arity: usize) -> Option<RowFn> {
    macro_rules! table {
        ($($k:literal)*) => {
            match arity {
                $($k => Some(lane_row::<$k> as RowFn),)*
                _ => None,
            }
        };
    }
    table!(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28)
}

/// The reassociating row kernel for a tap arity, if one is instantiated.
fn fast_row_fn(arity: usize) -> Option<RowFn> {
    macro_rules! table {
        ($($k:literal)*) => {
            match arity {
                $($k => Some(fast_row::<$k> as RowFn),)*
                _ => None,
            }
        };
    }
    table!(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28)
}

/// The innermost loop: `out[k·out_slope] = bias + Σ coeff·data[base+k·slope]`
/// for `k` in `0..count`. Dispatches an unrolled unit-stride kernel when
/// every stride is 1.
fn run_row(out_row: &mut [f64], out_slope: usize, count: usize, bias: f64, taps: &[RtTap<'_>]) {
    if taps.iter().any(|t| t.cfac.is_some()) {
        // Variable-coefficient path: the effective weight of each tap is
        // read from its coefficient grid per point. Taps are visited in the
        // generic order with `coeff · cfac · value`, and constant taps use
        // the plain `coeff` (RtTap::weight multiplies by nothing for them),
        // so a ones coefficient grid is bitwise-identical to the
        // constant-coefficient accumulation.
        for k in 0..count {
            let mut acc = bias;
            for t in taps {
                acc += t.weight(k) * t.data[t.base + k * t.slope];
            }
            out_row[k * out_slope] = acc;
        }
        return;
    }
    if out_slope == 1 && taps.iter().all(|t| t.slope == 1) {
        let out_row = &mut out_row[..count];
        // Coefficient-factored path: when the lowering sorted taps by
        // coefficient (see `polymg::lowering`), adjacent equal-coefficient
        // runs are summed before the single multiply. Measured on this
        // host, the const-generic unrolled loops below beat this for ≤28
        // taps (LLVM keeps everything in registers), so the factored path
        // only engages for stencils wider than the unroll dispatch, where
        // the alternative is the slow per-tap fallback.
        if taps.len() > 28 {
            let mut spans: Vec<(f64, usize, usize)> = Vec::new();
            let mut j = 0;
            while j < taps.len() {
                let c = taps[j].coeff;
                let mut k = j + 1;
                while k < taps.len() && taps[k].coeff == c {
                    k += 1;
                }
                spans.push((c, j, k));
                j = k;
            }
            if spans.len() * 2 <= taps.len() {
                let rows: Vec<&[f64]> = taps
                    .iter()
                    .map(|t| &t.data[t.base..t.base + count])
                    .collect();
                for (i, out) in out_row.iter_mut().enumerate() {
                    let mut acc = bias;
                    for &(c, a, b) in &spans {
                        let mut s = 0.0;
                        for r in &rows[a..b] {
                            s += r[i];
                        }
                        acc += c * s;
                    }
                    *out = acc;
                }
                return;
            }
        }
        macro_rules! fixed {
            ($k:literal) => {{
                let mut rows: [&[f64]; $k] = [&[]; $k];
                let mut coeff = [0.0f64; $k];
                for (j, t) in taps.iter().enumerate() {
                    rows[j] = &t.data[t.base..t.base + count];
                    coeff[j] = t.coeff;
                }
                for i in 0..count {
                    let mut acc = bias;
                    for j in 0..$k {
                        acc += coeff[j] * rows[j][i];
                    }
                    out_row[i] = acc;
                }
            }};
        }
        match taps.len() {
            0 => out_row.fill(bias),
            1 => fixed!(1),
            2 => fixed!(2),
            3 => fixed!(3),
            4 => fixed!(4),
            5 => fixed!(5),
            6 => fixed!(6),
            7 => fixed!(7),
            8 => fixed!(8),
            9 => fixed!(9),
            10 => fixed!(10),
            11 => fixed!(11),
            12 => fixed!(12),
            13 => fixed!(13),
            14 => fixed!(14),
            15 => fixed!(15),
            16 => fixed!(16),
            17 => fixed!(17),
            18 => fixed!(18),
            // 3-D class stencils (NAS resid/psinv land here)
            19 => fixed!(19),
            20 => fixed!(20),
            21 => fixed!(21),
            22 => fixed!(22),
            23 => fixed!(23),
            24 => fixed!(24),
            25 => fixed!(25),
            26 => fixed!(26),
            27 => fixed!(27),
            28 => fixed!(28),
            _ => {
                for i in 0..count {
                    let mut acc = bias;
                    for t in taps {
                        acc += t.coeff * t.data[t.base + i];
                    }
                    out_row[i] = acc;
                }
            }
        }
        return;
    }
    // strided path (restrict / interp)
    for k in 0..count {
        let mut acc = bias;
        for t in taps {
            acc += t.coeff * t.data[t.base + k * t.slope];
        }
        out_row[k * out_slope] = acc;
    }
}

fn linear_2d(
    form: &gmg_ir::LinearForm,
    pattern: &ParityPattern,
    region: &BoxDomain,
    out: &mut KernelOut<'_>,
    ins: &[KernelInput<'_>],
    spec: Option<RowFn>,
    xblock: usize,
) {
    let row_fn: RowFn = spec.unwrap_or(run_row as RowFn);
    let Some((y0, sy)) = parity_start(region.0[0].lo, region.0[0].hi, pattern.0[0]) else {
        return;
    };
    let Some((x0, sx)) = parity_start(region.0[1].lo, region.0[1].hi, pattern.0[1]) else {
        return;
    };
    let count = ((region.0[1].hi - x0) / sx + 1) as usize;
    let out_rs = out.extent(1) as usize;
    let (oy, ox) = (out.origin(0), out.origin(1));

    let inputs: Vec<&Space<'_>> = form
        .taps
        .iter()
        .map(|t| match &ins[t.slot] {
            KernelInput::Grid(s) => s,
            KernelInput::Zero => panic!("linear tap reads the zero grid (lowering bug)"),
        })
        .collect();

    // tap bases are affine in the row index: compute once, advance by a
    // constant per row (no per-row allocation or division in steady state)
    let mut taps: Vec<RtTap<'_>> = Vec::with_capacity(form.taps.len());
    let mut deltas: Vec<usize> = Vec::with_capacity(form.taps.len());
    for (t, s) in form.taps.iter().zip(&inputs) {
        let row = tap_row_base(&t.access, s, &[y0]);
        let (xb, slope) = tap_x_base_slope(&t.access, s, x0, sx);
        deltas.push((axis_coord_delta(&t.access.0[0], sy) * s.extents[1]) as usize);
        let cfac = t.cfactor.as_ref().map(|c| {
            let cs = match &ins[c.slot] {
                KernelInput::Grid(s) => s,
                KernelInput::Zero => panic!("coefficient tap reads the zero grid (lowering bug)"),
            };
            let crow = tap_row_base(&c.access, cs, &[y0]);
            let (cxb, cslope) = tap_x_base_slope(&c.access, cs, x0, sx);
            CfTap {
                data: cs.data,
                base: crow + cxb,
                slope: cslope,
                dy: (axis_coord_delta(&c.access.0[0], sy) * cs.extents[1]) as usize,
                dz_wrap: 0,
            }
        });
        taps.push(RtTap {
            data: s.data,
            base: row + xb,
            slope,
            coeff: t.coeff,
            cfac,
        });
    }

    gmg_trace::dispatch::record(dispatch_kind(sx as usize, &taps), 1);

    let ob0 = (y0 - oy) as usize * out_rs + (x0 - ox) as usize;
    let out_delta = sy as usize * out_rs;

    // Cache-blocked nest for the lane tiers: split the unit-stride
    // dimension into `xblock`-point slabs and sweep all rows of one slab
    // before moving on, so a slab's input rows stay cache-resident across
    // the y loop. Per-point arithmetic is untouched (each point sees the
    // same taps in the same order), so blocking is bitwise-transparent.
    if xblock > 0 && sx == 1 && count > xblock && taps.iter().all(|t| t.slope == 1) {
        let mut start = 0usize;
        while start < count {
            let len = (count - start).min(xblock);
            let mut btaps: Vec<RtTap<'_>> = taps
                .iter()
                .map(|t| RtTap {
                    data: t.data,
                    base: t.base + start,
                    slope: t.slope,
                    coeff: t.coeff,
                    cfac: t.cfac.map(|cf| CfTap {
                        base: cf.base + start * cf.slope,
                        ..cf
                    }),
                })
                .collect();
            let mut y = y0;
            let mut ob = ob0 + start;
            while y <= region.0[0].hi {
                row_fn(out.row_mut(ob, len), 1, len, form.bias, &btaps);
                for (t, d) in btaps.iter_mut().zip(&deltas) {
                    t.base += d;
                    if let Some(cf) = t.cfac.as_mut() {
                        cf.base += cf.dy;
                    }
                }
                ob += out_delta;
                y += sy;
            }
            start += len;
        }
        return;
    }

    let mut y = y0;
    let mut ob = ob0;
    let needed = if count == 0 {
        0
    } else {
        (count - 1) * sx as usize + 1
    };
    while y <= region.0[0].hi {
        row_fn(
            out.row_mut(ob, needed),
            sx as usize,
            count,
            form.bias,
            &taps,
        );
        for (t, d) in taps.iter_mut().zip(&deltas) {
            t.base += d;
            if let Some(cf) = t.cfac.as_mut() {
                cf.base += cf.dy;
            }
        }
        ob += out_delta;
        y += sy;
    }
}

fn linear_3d(
    form: &gmg_ir::LinearForm,
    pattern: &ParityPattern,
    region: &BoxDomain,
    out: &mut KernelOut<'_>,
    ins: &[KernelInput<'_>],
    spec: Option<RowFn>,
    xblock: usize,
) {
    let row_fn: RowFn = spec.unwrap_or(run_row as RowFn);
    let Some((z0, sz)) = parity_start(region.0[0].lo, region.0[0].hi, pattern.0[0]) else {
        return;
    };
    let Some((y0, sy)) = parity_start(region.0[1].lo, region.0[1].hi, pattern.0[1]) else {
        return;
    };
    let Some((x0, sx)) = parity_start(region.0[2].lo, region.0[2].hi, pattern.0[2]) else {
        return;
    };
    let count = ((region.0[2].hi - x0) / sx + 1) as usize;
    let out_rs = out.extent(2) as usize;
    let out_ps = (out.extent(1) * out.extent(2)) as usize;
    let (oz, oy, ox) = (out.origin(0), out.origin(1), out.origin(2));

    let inputs: Vec<&Space<'_>> = form
        .taps
        .iter()
        .map(|t| match &ins[t.slot] {
            KernelInput::Grid(s) => s,
            KernelInput::Zero => panic!("linear tap reads the zero grid (lowering bug)"),
        })
        .collect();

    // per-tap: base at (z0, y0), Δy increment, Δz increment (affine in both)
    let mut taps: Vec<RtTap<'_>> = Vec::with_capacity(form.taps.len());
    let mut dy: Vec<usize> = Vec::with_capacity(form.taps.len());
    let mut dz_wrap: Vec<i64> = Vec::with_capacity(form.taps.len());
    let ny_rows = {
        let mut c = 0i64;
        let mut y = y0;
        while y <= region.0[1].hi {
            c += 1;
            y += sy;
        }
        c
    };
    for (t, s) in form.taps.iter().zip(&inputs) {
        let base = tap_row_base(&t.access, s, &[z0, y0]);
        let (xb, slope) = tap_x_base_slope(&t.access, s, x0, sx);
        let row_stride = s.extents[2];
        let plane_stride = s.extents[1] * s.extents[2];
        let delta_y = axis_coord_delta(&t.access.0[1], sy) * row_stride;
        let delta_z = axis_coord_delta(&t.access.0[0], sz) * plane_stride;
        dy.push(delta_y as usize);
        // after ny_rows y-advances the base sits at base + ny_rows·Δy; wrap
        // to the next z-plane start with a (possibly negative) correction
        dz_wrap.push(delta_z - ny_rows * delta_y);
        let cfac = t.cfactor.as_ref().map(|c| {
            let cs = match &ins[c.slot] {
                KernelInput::Grid(s) => s,
                KernelInput::Zero => panic!("coefficient tap reads the zero grid (lowering bug)"),
            };
            let cbase = tap_row_base(&c.access, cs, &[z0, y0]);
            let (cxb, cslope) = tap_x_base_slope(&c.access, cs, x0, sx);
            let c_dy = axis_coord_delta(&c.access.0[1], sy) * cs.extents[2];
            let c_dz = axis_coord_delta(&c.access.0[0], sz) * cs.extents[1] * cs.extents[2];
            CfTap {
                data: cs.data,
                base: cbase + cxb,
                slope: cslope,
                dy: c_dy as usize,
                dz_wrap: c_dz - ny_rows * c_dy,
            }
        });
        taps.push(RtTap {
            data: s.data,
            base: base + xb,
            slope,
            coeff: t.coeff,
            cfac,
        });
    }

    gmg_trace::dispatch::record(dispatch_kind(sx as usize, &taps), 1);

    let ob0 = (z0 - oz) as usize * out_ps + (y0 - oy) as usize * out_rs + (x0 - ox) as usize;

    // Cache-blocked nest for the lane tiers: x-slabs outer, z/y rows inner
    // (see `linear_2d` — same bitwise-transparency argument).
    if xblock > 0 && sx == 1 && count > xblock && taps.iter().all(|t| t.slope == 1) {
        let mut start = 0usize;
        while start < count {
            let len = (count - start).min(xblock);
            let mut btaps: Vec<RtTap<'_>> = taps
                .iter()
                .map(|t| RtTap {
                    data: t.data,
                    base: t.base + start,
                    slope: t.slope,
                    coeff: t.coeff,
                    cfac: t.cfac.map(|cf| CfTap {
                        base: cf.base + start * cf.slope,
                        ..cf
                    }),
                })
                .collect();
            let mut z = z0;
            let mut ob_z = ob0 + start;
            while z <= region.0[0].hi {
                let mut y = y0;
                let mut ob = ob_z;
                while y <= region.0[1].hi {
                    row_fn(out.row_mut(ob, len), 1, len, form.bias, &btaps);
                    for (t, d) in btaps.iter_mut().zip(&dy) {
                        t.base += d;
                        if let Some(cf) = t.cfac.as_mut() {
                            cf.base += cf.dy;
                        }
                    }
                    ob += sy as usize * out_rs;
                    y += sy;
                }
                for (t, w) in btaps.iter_mut().zip(&dz_wrap) {
                    t.base = (t.base as i64 + w) as usize;
                    if let Some(cf) = t.cfac.as_mut() {
                        cf.base = (cf.base as i64 + cf.dz_wrap) as usize;
                    }
                }
                ob_z += sz as usize * out_ps;
                z += sz;
            }
            start += len;
        }
        return;
    }

    let needed = if count == 0 {
        0
    } else {
        (count - 1) * sx as usize + 1
    };
    let mut z = z0;
    let mut ob_z = ob0;
    while z <= region.0[0].hi {
        let mut y = y0;
        let mut ob = ob_z;
        while y <= region.0[1].hi {
            row_fn(
                out.row_mut(ob, needed),
                sx as usize,
                count,
                form.bias,
                &taps,
            );
            for (t, d) in taps.iter_mut().zip(&dy) {
                t.base += d;
                if let Some(cf) = t.cfac.as_mut() {
                    cf.base += cf.dy;
                }
            }
            ob += sy as usize * out_rs;
            y += sy;
        }
        for (t, w) in taps.iter_mut().zip(&dz_wrap) {
            t.base = (t.base as i64 + w) as usize;
            if let Some(cf) = t.cfac.as_mut() {
                cf.base = (cf.base as i64 + cf.dz_wrap) as usize;
            }
        }
        ob_z += sz as usize * out_ps;
        z += sz;
    }
}

/// Interpreter fallback: evaluate the expression per point.
fn interpret_case(
    expr: &Expr,
    pattern: &ParityPattern,
    region: &BoxDomain,
    out: &mut KernelOut<'_>,
    ins: &[KernelInput<'_>],
    slot_boundary: &[f64],
) {
    gmg_trace::dispatch::record(gmg_trace::dispatch::Kind::Interpreter, 1);
    let nd = region.ndims();
    let mut point = vec![0i64; nd];
    iterate_parity(region, pattern, nd, &mut point, 0, &mut |p| {
        let v = expr.eval_at(p, &mut |op, idx| {
            let Operand::Slot(k) = op else {
                panic!("unresolved operand at execution time")
            };
            match &ins[*k] {
                KernelInput::Grid(s) => s.at_or(idx, slot_boundary[*k]),
                KernelInput::Zero => slot_boundary[*k],
            }
        });
        let mut idx = 0usize;
        for d in 0..nd {
            idx = idx * out.extent(d) as usize + (p[d] - out.origin(d)) as usize;
        }
        out.row_mut(idx, 1)[0] = v;
    });
}

fn iterate_parity(
    region: &BoxDomain,
    pattern: &ParityPattern,
    nd: usize,
    point: &mut Vec<i64>,
    d: usize,
    f: &mut impl FnMut(&[i64]),
) {
    if d == nd {
        f(point);
        return;
    }
    let Some((start, step)) = parity_start(region.0[d].lo, region.0[d].hi, pattern.0[d]) else {
        return;
    };
    let mut v = start;
    while v <= region.0[d].hi {
        point[d] = v;
        iterate_parity(region, pattern, nd, point, d + 1, f);
        v += step;
    }
}

/// Fill every cell of `out` *outside* `inner` with `value` — the scratchpad
/// halo initialisation (ghost/boundary ring of a tile's alloc box).
pub fn fill_outside(out: &mut SpaceMut<'_>, inner: &BoxDomain, value: f64) {
    let nd = out.origin.len();
    match nd {
        2 => {
            let (ey, ex) = (out.extents[0], out.extents[1]);
            let iy = inner.0[0].shift(-out.origin[0]);
            let ix = inner.0[1].shift(-out.origin[1]);
            for y in 0..ey {
                let row = &mut out.data[(y * ex) as usize..((y + 1) * ex) as usize];
                if inner.is_empty() || !iy.contains(y) {
                    row.fill(value);
                } else {
                    for (x, v) in row.iter_mut().enumerate() {
                        if !ix.contains(x as i64) {
                            *v = value;
                        }
                    }
                }
            }
        }
        3 => {
            let (ez, ey, ex) = (out.extents[0], out.extents[1], out.extents[2]);
            let iz = inner.0[0].shift(-out.origin[0]);
            let iy = inner.0[1].shift(-out.origin[1]);
            let ix = inner.0[2].shift(-out.origin[2]);
            for z in 0..ez {
                for y in 0..ey {
                    let base = ((z * ey + y) * ex) as usize;
                    let row = &mut out.data[base..base + ex as usize];
                    if inner.is_empty() || !iz.contains(z) || !iy.contains(y) {
                        row.fill(value);
                    } else {
                        for (x, v) in row.iter_mut().enumerate() {
                            if !ix.contains(x as i64) {
                                *v = value;
                            }
                        }
                    }
                }
            }
        }
        d => panic!("unsupported rank {d}"),
    }
}

/// Copy `region` (global coordinates) from `src` to `dst`.
pub fn copy_box(src: &Space<'_>, dst: &mut SpaceMut<'_>, region: &BoxDomain) {
    if region.is_empty() {
        return;
    }
    let nd = region.ndims();
    match nd {
        2 => {
            let (xl, xh) = (region.0[1].lo, region.0[1].hi);
            let w = (xh - xl + 1) as usize;
            for y in region.0[0].lo..=region.0[0].hi {
                let sb = ((y - src.origin[0]) * src.extents[1] + (xl - src.origin[1])) as usize;
                let db = ((y - dst.origin[0]) * dst.extents[1] + (xl - dst.origin[1])) as usize;
                dst.data[db..db + w].copy_from_slice(&src.data[sb..sb + w]);
            }
        }
        3 => {
            let (xl, xh) = (region.0[2].lo, region.0[2].hi);
            let w = (xh - xl + 1) as usize;
            let sps = src.extents[1] * src.extents[2];
            let dps = dst.extents[1] * dst.extents[2];
            for z in region.0[0].lo..=region.0[0].hi {
                for y in region.0[1].lo..=region.0[1].hi {
                    let sb = ((z - src.origin[0]) * sps
                        + (y - src.origin[1]) * src.extents[2]
                        + (xl - src.origin[2])) as usize;
                    let db = ((z - dst.origin[0]) * dps
                        + (y - dst.origin[1]) * dst.extents[2]
                        + (xl - dst.origin[2])) as usize;
                    dst.data[db..db + w].copy_from_slice(&src.data[sb..sb + w]);
                }
            }
        }
        d => panic!("unsupported rank {d}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmg_ir::expr::{Access, AxisAccess};
    use gmg_ir::{LinearForm, Tap};
    use gmg_poly::Interval;
    use polymg::{KernelCase, StageKernel};

    fn space<'a>(data: &'a [f64], origin: &'a [i64], extents: &'a [i64]) -> Space<'a> {
        Space {
            data,
            origin,
            extents,
        }
    }

    #[test]
    fn space_indexing() {
        let data: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let s = space(&data, &[2, 3], &[4, 5]);
        assert_eq!(s.index(&[2, 3]), Some(0));
        assert_eq!(s.index(&[3, 4]), Some(6));
        assert_eq!(s.index(&[1, 3]), None);
        assert_eq!(s.index(&[2, 8]), None);
        assert_eq!(s.at_or(&[3, 4], -1.0), 6.0);
        assert_eq!(s.at_or(&[0, 0], -1.0), -1.0);
    }

    fn stencil_kernel_2d() -> StageKernel {
        // out = 0.25 * (in(y,x-1) + in(y,x+1) + in(y-1,x) + in(y+1,x))
        let tap = |oy: i64, ox: i64| Tap {
            slot: 0,
            access: Access::offsets(&[oy, ox]),
            coeff: 0.25,
            cfactor: None,
        };
        StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(2),
                body: KernelBody::Linear(LinearForm {
                    bias: 0.0,
                    taps: vec![tap(0, -1), tap(0, 1), tap(-1, 0), tap(1, 0)],
                }),
            }],
        }
    }

    #[test]
    fn unit_stride_stencil_2d() {
        // 6x6 input (origin 0), linear field f(y,x) = 10y + x: the 4-point
        // average equals the centre value.
        let n = 4i64;
        let input: Vec<f64> = (0..36).map(|i| (10 * (i / 6) + i % 6) as f64).collect();
        let mut outbuf = vec![0.0; 36];
        let origin = [0i64, 0];
        let ext = [6i64, 6];
        let region = BoxDomain::interior(2, n);
        let k = stencil_kernel_2d();
        {
            let mut out = SpaceMut {
                data: &mut outbuf,
                origin: &origin,
                extents: &ext,
            };
            let ins = [KernelInput::Grid(space(&input, &origin, &ext))];
            execute_stage(&k, &region, &mut out, &ins, &[0.0]);
        }
        for y in 1..=n {
            for x in 1..=n {
                let got = outbuf[(y * 6 + x) as usize];
                assert!(
                    (got - (10 * y + x) as f64).abs() < 1e-12,
                    "at ({y},{x}): {got}"
                );
            }
        }
        // ghost untouched
        assert_eq!(outbuf[0], 0.0);
    }

    #[test]
    fn scratch_offset_output() {
        // Output into a small window with non-zero origin.
        let input: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let iorigin = [0i64, 0];
        let iext = [8i64, 8];
        let mut scratch = vec![-1.0; 3 * 4];
        let sorigin = [2i64, 3];
        let sext = [3i64, 4];
        let region = BoxDomain::new(vec![Interval::new(2, 4), Interval::new(3, 6)]);
        let k = stencil_kernel_2d();
        {
            let mut out = SpaceMut {
                data: &mut scratch,
                origin: &sorigin,
                extents: &sext,
            };
            let ins = [KernelInput::Grid(space(&input, &iorigin, &iext))];
            execute_stage(&k, &region, &mut out, &ins, &[0.0]);
        }
        // f(y,x) = 8y + x is linear → average = centre
        for y in 2..=4i64 {
            for x in 3..=6i64 {
                let got = scratch[((y - 2) * 4 + (x - 3)) as usize];
                assert!((got - (8 * y + x) as f64).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn restrict_strided_reads() {
        // out(y,x) = in(2y, 2x): stride-2 taps.
        let input: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let iorigin = [0i64, 0];
        let iext = [10i64, 10];
        let mut outbuf = vec![0.0; 36];
        let oorigin = [0i64, 0];
        let oext = [6i64, 6];
        let k = StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(2),
                body: KernelBody::Linear(LinearForm {
                    bias: 0.0,
                    taps: vec![Tap {
                        slot: 0,
                        access: Access(vec![AxisAccess::down(0), AxisAccess::down(0)]),
                        coeff: 1.0,
                        cfactor: None,
                    }],
                }),
            }],
        };
        let region = BoxDomain::interior(2, 4);
        {
            let mut out = SpaceMut {
                data: &mut outbuf,
                origin: &oorigin,
                extents: &oext,
            };
            let ins = [KernelInput::Grid(space(&input, &iorigin, &iext))];
            execute_stage(&k, &region, &mut out, &ins, &[0.0]);
        }
        for y in 1..=4i64 {
            for x in 1..=4i64 {
                assert_eq!(outbuf[(y * 6 + x) as usize], (2 * y * 10 + 2 * x) as f64);
            }
        }
    }

    #[test]
    fn parity_case_interp_1d_like() {
        // 2-D interp in x only: even x copies in(y, x/2), odd x averages.
        let input: Vec<f64> = (0..36).map(|i| (i % 6) as f64).collect(); // f = x
        let iorigin = [0i64, 0];
        let iext = [6i64, 6];
        let mut outbuf = vec![0.0; 12 * 12];
        let oorigin = [0i64, 0];
        let oext = [12i64, 12];
        let even = KernelCase {
            pattern: ParityPattern(vec![Parity::Any, Parity::Even]),
            body: KernelBody::Linear(LinearForm {
                bias: 0.0,
                taps: vec![Tap {
                    slot: 0,
                    access: Access(vec![AxisAccess::offset(0), AxisAccess::up(0)]),
                    coeff: 1.0,
                    cfactor: None,
                }],
            }),
        };
        let odd = KernelCase {
            pattern: ParityPattern(vec![Parity::Any, Parity::Odd]),
            body: KernelBody::Linear(LinearForm {
                bias: 0.0,
                taps: vec![
                    Tap {
                        slot: 0,
                        access: Access(vec![AxisAccess::offset(0), AxisAccess::up(-1)]),
                        coeff: 0.5,
                        cfactor: None,
                    },
                    Tap {
                        slot: 0,
                        access: Access(vec![AxisAccess::offset(0), AxisAccess::up(1)]),
                        coeff: 0.5,
                        cfactor: None,
                    },
                ],
            }),
        };
        let k = StageKernel {
            cases: vec![even, odd],
        };
        // region rows map back into input rows directly (offset 0 access):
        // keep y within the input's rows.
        let region = BoxDomain::new(vec![Interval::new(1, 5), Interval::new(2, 9)]);
        {
            let mut out = SpaceMut {
                data: &mut outbuf,
                origin: &oorigin,
                extents: &oext,
            };
            let ins = [KernelInput::Grid(space(&input, &iorigin, &iext))];
            execute_stage(&k, &region, &mut out, &ins, &[0.0]);
        }
        for y in 1..=5i64 {
            for x in 2..=9i64 {
                let got = outbuf[(y * 12 + x) as usize];
                let want = x as f64 / 2.0;
                assert!((got - want).abs() < 1e-12, "({y},{x}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn interpreter_matches_linear() {
        // the same 4-point average via the interpreter
        let input: Vec<f64> = (0..36).map(|i| ((i * 7) % 11) as f64).collect();
        let origin = [0i64, 0];
        let ext = [6i64, 6];
        let region = BoxDomain::interior(2, 4);
        let lin = stencil_kernel_2d();
        let op = Operand::Slot(0);
        let expr = 0.25 * (op.at(&[0, -1]) + op.at(&[0, 1]) + op.at(&[-1, 0]) + op.at(&[1, 0]));
        let itp = StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(2),
                body: KernelBody::Interpreted(expr),
            }],
        };
        let mut a = vec![0.0; 36];
        let mut b = vec![0.0; 36];
        for (k, buf) in [(&lin, &mut a), (&itp, &mut b)] {
            let mut out = SpaceMut {
                data: buf,
                origin: &origin,
                extents: &ext,
            };
            let ins = [KernelInput::Grid(space(&input, &origin, &ext))];
            execute_stage(k, &region, &mut out, &ins, &[0.0]);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn linear_3d_seven_point() {
        let n = 3i64;
        let e = n + 2;
        let input: Vec<f64> = (0..e * e * e)
            .map(|i| {
                let z = i / (e * e);
                let y = (i / e) % e;
                let x = i % e;
                (100 * z + 10 * y + x) as f64
            })
            .collect();
        let mut outbuf = vec![0.0; (e * e * e) as usize];
        let origin = [0i64, 0, 0];
        let ext = [e, e, e];
        let tap = |o: [i64; 3], c: f64| Tap {
            slot: 0,
            access: Access::offsets(&o),
            coeff: c,
            cfactor: None,
        };
        let k = StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(3),
                body: KernelBody::Linear(LinearForm {
                    bias: 0.0,
                    taps: vec![
                        tap([0, 0, -1], 1.0 / 6.0),
                        tap([0, 0, 1], 1.0 / 6.0),
                        tap([0, -1, 0], 1.0 / 6.0),
                        tap([0, 1, 0], 1.0 / 6.0),
                        tap([-1, 0, 0], 1.0 / 6.0),
                        tap([1, 0, 0], 1.0 / 6.0),
                    ],
                }),
            }],
        };
        let region = BoxDomain::interior(3, n);
        {
            let mut out = SpaceMut {
                data: &mut outbuf,
                origin: &origin,
                extents: &ext,
            };
            let ins = [KernelInput::Grid(space(&input, &origin, &ext))];
            execute_stage(&k, &region, &mut out, &ins, &[0.0]);
        }
        for z in 1..=n {
            for y in 1..=n {
                for x in 1..=n {
                    let got = outbuf[((z * e + y) * e + x) as usize];
                    let want = (100 * z + 10 * y + x) as f64;
                    assert!((got - want).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn fill_outside_2d() {
        let mut buf = vec![1.0; 25];
        let origin = [0i64, 0];
        let ext = [5i64, 5];
        let inner = BoxDomain::new(vec![Interval::new(1, 3), Interval::new(2, 3)]);
        {
            let mut out = SpaceMut {
                data: &mut buf,
                origin: &origin,
                extents: &ext,
            };
            fill_outside(&mut out, &inner, 9.0);
        }
        for y in 0..5i64 {
            for x in 0..5i64 {
                let v = buf[(y * 5 + x) as usize];
                if inner.contains_point(&[y, x]) {
                    assert_eq!(v, 1.0);
                } else {
                    assert_eq!(v, 9.0);
                }
            }
        }
    }

    #[test]
    fn fill_outside_3d_and_copy_box() {
        let mut buf = vec![1.0; 27];
        let origin = [0i64, 0, 0];
        let ext = [3i64, 3, 3];
        let inner = BoxDomain::new(vec![
            Interval::new(1, 1),
            Interval::new(1, 1),
            Interval::new(1, 1),
        ]);
        {
            let mut out = SpaceMut {
                data: &mut buf,
                origin: &origin,
                extents: &ext,
            };
            fill_outside(&mut out, &inner, 0.0);
        }
        assert_eq!(buf.iter().filter(|&&v| v == 1.0).count(), 1);
        assert_eq!(buf[13], 1.0);

        // copy the centre into another 3D space
        let mut dst = vec![0.0; 27];
        {
            let s = space(&buf, &origin, &ext);
            let mut d = SpaceMut {
                data: &mut dst,
                origin: &origin,
                extents: &ext,
            };
            copy_box(&s, &mut d, &inner);
        }
        assert_eq!(dst[13], 1.0);
        assert_eq!(dst.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn copy_box_2d_offset_spaces() {
        let src_data: Vec<f64> = (0..36).map(|i| i as f64).collect();
        let sorigin = [0i64, 0];
        let sext = [6i64, 6];
        let mut dd = vec![0.0; 9];
        let dorigin = [2i64, 2];
        let dext = [3i64, 3];
        let region = BoxDomain::new(vec![Interval::new(2, 4), Interval::new(2, 4)]);
        {
            let s = space(&src_data, &sorigin, &sext);
            let mut d = SpaceMut {
                data: &mut dd,
                origin: &dorigin,
                extents: &dext,
            };
            copy_box(&s, &mut d, &region);
        }
        assert_eq!(dd[0], 14.0); // (2,2)
        assert_eq!(dd[8], 28.0); // (4,4)
    }

    #[test]
    fn empty_region_is_noop() {
        let input = vec![0.0; 16];
        let mut outbuf = vec![5.0; 16];
        let origin = [0i64, 0];
        let ext = [4i64, 4];
        let k = stencil_kernel_2d();
        let mut out = SpaceMut {
            data: &mut outbuf,
            origin: &origin,
            extents: &ext,
        };
        let ins = [KernelInput::Grid(space(&input, &origin, &ext))];
        execute_stage(&k, &BoxDomain::empty(2), &mut out, &ins, &[0.0]);
        assert!(outbuf.iter().all(|&v| v == 5.0));
    }

    #[test]
    fn specialized_impl_matches_generic_bitwise() {
        // unit-stride stencil and a strided restrict, each run once through
        // the generic path and once with a specialized tag: bitwise equal
        let input: Vec<f64> = (0..100).map(|i| ((i * 31) % 17) as f64 * 0.37).collect();
        let origin = [0i64, 0];
        let ext = [10i64, 10];
        let region = BoxDomain::interior(2, 8);
        let stencil = stencil_kernel_2d();
        let restrict = StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(2),
                body: KernelBody::Linear(LinearForm {
                    bias: 0.0,
                    taps: vec![
                        Tap {
                            slot: 0,
                            access: Access(vec![AxisAccess::down(0), AxisAccess::down(0)]),
                            coeff: 0.5,
                            cfactor: None,
                        },
                        Tap {
                            slot: 0,
                            access: Access(vec![AxisAccess::down(0), AxisAccess::down(1)]),
                            coeff: 0.5,
                            cfactor: None,
                        },
                    ],
                }),
            }],
        };
        let restrict_region = BoxDomain::interior(2, 4);
        for (k, tag, reg) in [
            (&stencil, KernelImpl::Stencil2D5, &region),
            (&restrict, KernelImpl::Restrict, &restrict_region),
        ] {
            let mut generic = vec![0.0; 100];
            let mut spec = vec![0.0; 100];
            for (tag, buf) in [(KernelImpl::Generic, &mut generic), (tag, &mut spec)] {
                let mut out = SpaceMut {
                    data: buf,
                    origin: &origin,
                    extents: &ext,
                };
                let ins = [KernelInput::Grid(space(&input, &origin, &ext))];
                execute_stage_impl(tag, k, reg, &mut out, &ins, &[0.0]);
            }
            assert_eq!(generic, spec, "{tag:?} diverged from the generic path");
        }
    }

    #[test]
    fn bias_only_kernel() {
        let mut outbuf = vec![0.0; 16];
        let origin = [0i64, 0];
        let ext = [4i64, 4];
        let k = StageKernel {
            cases: vec![KernelCase {
                pattern: ParityPattern::any(2),
                body: KernelBody::Linear(LinearForm {
                    bias: 3.5,
                    taps: vec![],
                }),
            }],
        };
        let region = BoxDomain::interior(2, 2);
        let mut out = SpaceMut {
            data: &mut outbuf,
            origin: &origin,
            extents: &ext,
        };
        execute_stage(&k, &region, &mut out, &[], &[]);
        assert_eq!(outbuf[5], 3.5);
        assert_eq!(outbuf[0], 0.0);
    }
}
