//! Minimal in-tree stand-in for the `rayon` crate.
//!
//! The build environment has no network access to a crate registry, so the
//! workspace vendors the small slice of rayon's API it actually uses:
//! `par_iter` / `into_par_iter` / `par_chunks_mut` driven by `for_each`
//! (optionally through `enumerate`), plus `ThreadPool::install` and
//! `current_num_threads`. Parallelism is implemented with
//! `std::thread::scope`, splitting the item list into one contiguous block
//! per thread. With one thread (the harness default) everything runs inline
//! on the caller's stack with no spawning.

use std::cell::Cell;
use std::ops::{Range, RangeInclusive};

thread_local! {
    /// 0 = "no pool installed": fall back to available_parallelism.
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Number of threads the current scope parallelises over.
pub fn current_num_threads() -> usize {
    let n = CURRENT_THREADS.with(|c| c.get());
    if n == 0 {
        default_threads()
    } else {
        n
    }
}

/// A pool is just a thread-count: `install` pins `current_num_threads`
/// for the duration of the closure (restored even on panic).
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

struct Restore(usize);
impl Drop for Restore {
    fn drop(&mut self) {
        CURRENT_THREADS.with(|c| c.set(self.0));
    }
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = CURRENT_THREADS.with(|c| c.replace(self.threads));
        let _restore = Restore(prev);
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.threads {
            Some(0) | None => default_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

/// Run `f` over `items` on up to `current_num_threads()` scoped threads.
fn run_parallel<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let nthreads = current_num_threads().max(1);
    if nthreads == 1 || items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let nblocks = nthreads.min(items.len());
    let per = items.len().div_ceil(nblocks);
    let mut items = items;
    let mut blocks: Vec<Vec<I>> = Vec::with_capacity(nblocks);
    while !items.is_empty() {
        let tail = items.split_off(items.len().saturating_sub(per));
        blocks.push(tail);
    }
    let f = &f;
    std::thread::scope(|s| {
        for block in blocks {
            s.spawn(move || {
                // Blocks inherit the sequential thread-count so nested
                // parallel calls inside a worker run inline.
                CURRENT_THREADS.with(|c| c.set(1));
                for item in block {
                    f(item);
                }
            });
        }
    });
}

pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Materialise the item list (refs, chunks, or owned values).
    fn drain(self) -> Vec<Self::Item>;

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_parallel(self.drain(), f);
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate(self)
    }
}

pub struct Enumerate<P>(P);

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn drain(self) -> Vec<Self::Item> {
        self.0.drain().into_iter().enumerate().collect()
    }
}

pub struct IntoParIter<T: Send>(Vec<T>);

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn drain(self) -> Vec<T> {
        self.0
    }
}

pub struct ParSliceIter<'a, T: Sync>(&'a [T]);

impl<'a, T: Sync> ParallelIterator for ParSliceIter<'a, T> {
    type Item = &'a T;

    fn drain(self) -> Vec<&'a T> {
        self.0.iter().collect()
    }
}

pub struct ParChunksMut<'a, T: Send>(&'a mut [T], usize);

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn drain(self) -> Vec<&'a mut [T]> {
        self.0.chunks_mut(self.1).collect()
    }
}

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        IntoParIter(self)
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = IntoParIter<$t>;
            fn into_par_iter(self) -> Self::Iter {
                IntoParIter(self.collect())
            }
        }
        impl IntoParallelIterator for RangeInclusive<$t> {
            type Item = $t;
            type Iter = IntoParIter<$t>;
            fn into_par_iter(self) -> Self::Iter {
                IntoParIter(self.collect())
            }
        }
    )*};
}

impl_range_par_iter!(usize, u32, u64, i32, i64);

pub trait IntoParallelRefIterator<'data> {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParSliceIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        ParSliceIter(self)
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParSliceIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        ParSliceIter(self)
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunksMut(self, chunk_size)
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn chunks_cover_all_rows() {
        let mut data = vec![0.0f64; 100];
        data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as f64 + 1.0;
            }
        });
        assert!(data.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn range_sum_matches_sequential() {
        let total = AtomicU64::new(0);
        (1..=100usize).into_par_iter().for_each(|i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }
}
