//! Minimal in-tree stand-in for the `rayon` crate, backed by a persistent
//! work-stealing thread pool.
//!
//! The build environment has no network access to a crate registry, so the
//! workspace vendors the small slice of rayon's API it actually uses:
//! `par_iter` / `into_par_iter` / `par_chunks_mut` driven by `for_each`
//! (optionally through `enumerate`), plus `ThreadPool::install` and
//! `current_num_threads`.
//!
//! ## Execution model
//!
//! A [`ThreadPool`] owns `threads - 1` long-lived worker threads (spawned
//! lazily on the first parallel region, parked on a condvar between
//! regions); the caller of every parallel region participates as the
//! remaining worker. One process-wide pool backs code that never installs
//! a pool explicitly. Per region, the item list is partitioned into one
//! contiguous, order-preserving index range per worker (sizes differ by at
//! most one — see [`partition_ranges`]); each range lives in a packed
//! `(head, tail)` atomic. The owner claims items one at a time from the
//! head (ascending order, good locality for row/tile sweeps); an idle
//! worker steals the *back half* of a victim's remaining range in one CAS
//! (chunked stealing) and re-publishes everything but one item as its own
//! queue, so skewed regions rebalance in `O(log n)` steals.
//!
//! Workers run items with the thread-scoped parallelism pinned to 1, so
//! nested parallel calls inside a region run inline. Panics inside items
//! are caught, the region completes, and the first payload is rethrown on
//! the calling thread — matching `std::thread::scope` semantics closely
//! enough for this workspace.

use std::cell::{Cell, RefCell};
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// 0 = "no pool installed": fall back to available_parallelism.
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
    /// Pool installed on this thread by [`ThreadPool::install`].
    static CURRENT_POOL: RefCell<Option<Arc<PoolInner>>> = const { RefCell::new(None) };
    /// Worker slot this thread occupies inside a region (`usize::MAX` =
    /// not a pool participant).
    static WORKER_INDEX: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn default_threads() -> usize {
    // Cached: `available_parallelism` re-reads procfs/cgroup files on every
    // call, and this is queried per stage dispatch on the hot path —
    // measured at >50 µs per call on containerized hosts, which dwarfed
    // whole stage kernels before caching.
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Number of threads the current scope parallelises over.
pub fn current_num_threads() -> usize {
    let n = CURRENT_THREADS.with(|c| c.get());
    if n == 0 {
        default_threads()
    } else {
        n
    }
}

/// The worker slot of the calling thread inside the active pool, or `None`
/// outside parallel regions. Slots are dense in `0..threads`: the region's
/// caller takes slot 0, persistent workers occupy `1..threads`. Used for
/// worker-affine storage (e.g. scratchpad arenas).
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|c| {
        let v = c.get();
        (v != usize::MAX).then_some(v)
    })
}

/// Split `0..len` into at most `nblocks` contiguous, order-preserving
/// ranges whose sizes differ by at most one (the first `len % nblocks`
/// ranges get the extra item). Returns one possibly-empty range when
/// `len == 0`.
pub fn partition_ranges(len: usize, nblocks: usize) -> Vec<Range<usize>> {
    assert!(nblocks > 0, "nblocks must be positive");
    let nblocks = nblocks.min(len).max(1);
    let base = len / nblocks;
    let extra = len % nblocks;
    let mut out = Vec::with_capacity(nblocks);
    let mut lo = 0usize;
    for b in 0..nblocks {
        let size = base + usize::from(b < extra);
        out.push(lo..lo + size);
        lo += size;
    }
    out
}

/// Monotonic lifetime counters of one pool (or the global pool). All
/// values only ever grow; observers work with deltas between snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Worker threads ever spawned (`threads - 1` after first use, then
    /// constant: the persistence guarantee).
    pub workers_spawned: u64,
    /// Parallel regions executed.
    pub regions: u64,
    /// Items executed across all regions.
    pub items: u64,
    /// Chunk steals between workers.
    pub steals: u64,
    /// Times a worker parked waiting for work.
    pub parks: u64,
    /// Items claimed but dropped unexecuted because their region was
    /// poisoned by an earlier panic.
    pub cancelled: u64,
}

/// Counters of the process-wide pool (zeros until its first region).
pub fn global_pool_counters() -> PoolCounters {
    GLOBAL_POOL.get().map(|p| p.counters()).unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

/// One worker's queue: a packed `(head, tail)` index range over the
/// region's item buffer; empty when `head >= tail`. Owners CAS the head
/// forward one item at a time; thieves CAS the tail back by half the
/// remaining length.
struct Queue(AtomicU64);

#[inline]
fn pack(head: u32, tail: u32) -> u64 {
    ((head as u64) << 32) | tail as u64
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl Queue {
    fn new(lo: u32, hi: u32) -> Queue {
        Queue(AtomicU64::new(pack(lo, hi)))
    }

    fn is_empty(&self) -> bool {
        let (h, t) = unpack(self.0.load(Ordering::Acquire));
        h >= t
    }

    /// Claim the next item from the front (owner side).
    fn pop_front(&self) -> Option<usize> {
        let mut v = self.0.load(Ordering::Acquire);
        loop {
            let (h, t) = unpack(v);
            if h >= t {
                return None;
            }
            match self.0.compare_exchange_weak(
                v,
                pack(h + 1, t),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(h as usize),
                Err(cur) => v = cur,
            }
        }
    }

    /// Steal the back half (at least one item) in one CAS (thief side).
    fn steal_back(&self) -> Option<(u32, u32)> {
        let mut v = self.0.load(Ordering::Acquire);
        loop {
            let (h, t) = unpack(v);
            if h >= t {
                return None;
            }
            let n = (t - h).div_ceil(2);
            match self.0.compare_exchange_weak(
                v,
                pack(h, t - n),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((t - n, t)),
                Err(cur) => v = cur,
            }
        }
    }

    /// Re-publish a stolen chunk as this (observed-empty) queue. Fails if
    /// a slot-sharing participant refilled the queue first.
    fn reseed(&self, lo: u32, hi: u32) -> bool {
        let v = self.0.load(Ordering::Acquire);
        let (h, t) = unpack(v);
        h >= t
            && self
                .0
                .compare_exchange(v, pack(lo, hi), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
    }
}

/// Completion/panic state of one region, living on the caller's stack for
/// the duration of [`PoolInner::run_region`].
struct RegionHeader {
    /// Items not yet executed.
    remaining: AtomicUsize,
    /// Persistent workers currently inside the region's `participate`.
    active: AtomicUsize,
    steals: AtomicU64,
    /// Set by the first panicking item; later items of this region are
    /// claimed and dropped instead of executed, so the region drains fast
    /// and the damage never spreads past its own item list.
    poisoned: AtomicBool,
    /// Items cancelled because the region was poisoned.
    cancelled: AtomicU64,
    done: Mutex<()>,
    done_cv: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl RegionHeader {
    fn notify_done(&self) {
        let _g = self.done.lock().unwrap();
        self.done_cv.notify_all();
    }
}

/// Type-erased state of one region (items + queues + the user closure).
struct RegionCtx<I, F> {
    items: *mut I,
    queues: Vec<Queue>,
    f: *const F,
    header: *const RegionHeader,
}

/// A published region, as seen by the worker loop. The raw pointers are
/// valid while the job is in [`PoolState::jobs`]: workers register in
/// `RegionHeader::active` under the state lock before touching them, and
/// the region's caller unpublishes the job and then waits for
/// `active == 0` before returning.
#[derive(Clone, Copy)]
struct Job {
    run: unsafe fn(*const (), usize),
    has_work: unsafe fn(*const ()) -> bool,
    ctx: *const (),
    header: *const RegionHeader,
}

// SAFETY: the pointers are only dereferenced under the publication
// protocol above; the pointees are Sync-compatible region state.
unsafe impl Send for Job {}

struct PoolState {
    jobs: Vec<Job>,
    shutdown: bool,
    spawned: bool,
}

struct PoolInner {
    threads: usize,
    state: Mutex<PoolState>,
    work_cv: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    workers_spawned: AtomicU64,
    regions: AtomicU64,
    items: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    cancelled: AtomicU64,
}

/// True while any queue of the region still holds unclaimed items.
///
/// # Safety
/// `ctx` must point at a live `RegionCtx<I, F>`.
unsafe fn region_has_work<I, F>(ctx: *const ()) -> bool {
    let ctx = &*(ctx as *const RegionCtx<I, F>);
    ctx.queues.iter().any(|q| !q.is_empty())
}

/// Work loop of one participant (`slot` = its dense worker index): drain
/// the own queue from the front, then steal chunks until the region is dry.
///
/// # Safety
/// `ctx` must point at a live `RegionCtx<I, F>` whose items/queues/header
/// outlive this call (guaranteed by the region publication protocol).
unsafe fn participate<I: Send, F: Fn(I) + Sync>(ctx: *const (), slot: usize) {
    let ctx = &*(ctx as *const RegionCtx<I, F>);
    let header = &*ctx.header;
    let f = &*ctx.f;
    let nq = ctx.queues.len();
    let my = slot % nq;

    let run_one = |idx: usize| {
        // Claim the item by value; a panicking closure drops it during
        // unwinding, so nothing leaks and the region still completes.
        let item = std::ptr::read(ctx.items.add(idx));
        if header.poisoned.load(Ordering::Acquire) {
            // A sibling item already panicked: drop this one unexecuted.
            drop(item);
            header.cancelled.fetch_add(1, Ordering::Relaxed);
        } else if let Err(e) = catch_unwind(AssertUnwindSafe(|| f(item))) {
            header.poisoned.store(true, Ordering::Release);
            let mut first = header.panic.lock().unwrap();
            if first.is_none() {
                *first = Some(e);
            }
        }
        if header.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            header.notify_done();
        }
    };

    loop {
        if let Some(i) = ctx.queues[my].pop_front() {
            run_one(i);
            continue;
        }
        let mut progressed = false;
        for off in 1..nq {
            let victim = (my + off) % nq;
            if let Some((lo, hi)) = ctx.queues[victim].steal_back() {
                header.steals.fetch_add(1, Ordering::Relaxed);
                // Re-publish everything but one item as our own queue so
                // other idle workers can steal from us in turn; if a
                // slot-sharing participant beat us to the queue, run the
                // leftovers inline.
                if hi - lo > 1 && !ctx.queues[my].reseed(lo + 1, hi) {
                    for i in lo + 1..hi {
                        run_one(i as usize);
                    }
                }
                run_one(lo as usize);
                progressed = true;
                break;
            }
        }
        if !progressed {
            return;
        }
    }
}

fn worker_loop(pool: Arc<PoolInner>, idx: usize) {
    // Nested parallel calls inside items run inline on this worker.
    CURRENT_THREADS.with(|c| c.set(1));
    WORKER_INDEX.with(|c| c.set(idx));
    loop {
        let job = {
            let mut st = pool.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                let found = st
                    .jobs
                    .iter()
                    .find(|j| unsafe { (j.has_work)(j.ctx) })
                    .copied();
                if let Some(j) = found {
                    // Register inside the region while the job is still
                    // published — the caller waits for us after unpublishing.
                    unsafe { (*j.header).active.fetch_add(1, Ordering::AcqRel) };
                    break j;
                }
                pool.parks.fetch_add(1, Ordering::Relaxed);
                st = pool.work_cv.wait(st).unwrap();
            }
        };
        unsafe { (job.run)(job.ctx, idx) };
        let header = unsafe { &*job.header };
        if header.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            header.notify_done();
        }
    }
}

impl PoolInner {
    fn new(threads: usize) -> Arc<PoolInner> {
        Arc::new(PoolInner {
            threads,
            state: Mutex::new(PoolState {
                jobs: Vec::new(),
                shutdown: false,
                spawned: false,
            }),
            work_cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            workers_spawned: AtomicU64::new(0),
            regions: AtomicU64::new(0),
            items: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        })
    }

    /// Spawn the persistent workers on first use (once per pool lifetime).
    fn ensure_workers(self: &Arc<Self>) {
        if self.threads <= 1 {
            return;
        }
        {
            let mut st = self.state.lock().unwrap();
            if st.spawned {
                return;
            }
            st.spawned = true;
        }
        let mut handles = self.handles.lock().unwrap();
        for idx in 1..self.threads {
            let pool = Arc::clone(self);
            handles.push(std::thread::spawn(move || worker_loop(pool, idx)));
        }
        self.workers_spawned
            .fetch_add((self.threads - 1) as u64, Ordering::Relaxed);
    }

    fn counters(&self) -> PoolCounters {
        PoolCounters {
            workers_spawned: self.workers_spawned.load(Ordering::Relaxed),
            regions: self.regions.load(Ordering::Relaxed),
            items: self.items.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
        }
    }

    /// Execute one parallel region: publish queues over `items`, let the
    /// parked workers join in, participate from the calling thread, and
    /// only return once every item ran and every helper left the region.
    fn run_region<I: Send, F: Fn(I) + Sync>(self: &Arc<Self>, mut items: Vec<I>, f: &F) {
        let len = items.len();
        let nq = self.threads.min(len);
        let queues: Vec<Queue> = partition_ranges(len, nq)
            .into_iter()
            .map(|r| Queue::new(r.start as u32, r.end as u32))
            .collect();
        let header = RegionHeader {
            remaining: AtomicUsize::new(len),
            active: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            cancelled: AtomicU64::new(0),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        };
        let ctx = RegionCtx::<I, F> {
            items: items.as_mut_ptr(),
            queues,
            f,
            header: &header,
        };
        // Items are claimed by `ptr::read` in `participate`; the Vec keeps
        // the allocation alive but must not drop the elements again.
        unsafe { items.set_len(0) };

        self.ensure_workers();
        let job = Job {
            run: participate::<I, F>,
            has_work: region_has_work::<I, F>,
            ctx: &ctx as *const RegionCtx<I, F> as *const (),
            header: &header,
        };
        {
            let mut st = self.state.lock().unwrap();
            st.jobs.push(job);
        }
        self.work_cv.notify_all();
        self.regions.fetch_add(1, Ordering::Relaxed);
        self.items.fetch_add(len as u64, Ordering::Relaxed);

        // The caller participates as slot 0 (persistent workers occupy
        // 1..threads), with nested parallelism pinned inline.
        let prev_threads = CURRENT_THREADS.with(|c| c.replace(1));
        let prev_index = WORKER_INDEX.with(|c| c.replace(0));
        unsafe { participate::<I, F>(job.ctx, 0) };
        CURRENT_THREADS.with(|c| c.set(prev_threads));
        WORKER_INDEX.with(|c| c.set(prev_index));

        // All items executed...
        {
            let mut g = header.done.lock().unwrap();
            while header.remaining.load(Ordering::Acquire) > 0 {
                g = header.done_cv.wait(g).unwrap();
            }
        }
        // ...no new worker can enter...
        {
            let mut st = self.state.lock().unwrap();
            st.jobs.retain(|j| !std::ptr::eq(j.header, job.header));
        }
        // ...and every helper has left (its borrows of ctx/header ended).
        {
            let mut g = header.done.lock().unwrap();
            while header.active.load(Ordering::Acquire) > 0 {
                g = header.done_cv.wait(g).unwrap();
            }
        }
        self.steals
            .fetch_add(header.steals.load(Ordering::Relaxed), Ordering::Relaxed);
        self.cancelled
            .fetch_add(header.cancelled.load(Ordering::Relaxed), Ordering::Relaxed);
        drop(items);
        let p = header.panic.lock().unwrap().take();
        if let Some(p) = p {
            resume_unwind(p);
        }
    }

    fn shutdown(&self) {
        {
            let mut st = self.state.lock().unwrap();
            st.shutdown = true;
        }
        self.work_cv.notify_all();
        let handles = std::mem::take(&mut *self.handles.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

static GLOBAL_POOL: OnceLock<Arc<PoolInner>> = OnceLock::new();

fn global_pool() -> &'static Arc<PoolInner> {
    GLOBAL_POOL.get_or_init(|| PoolInner::new(default_threads()))
}

// ---------------------------------------------------------------------------
// Public pool API
// ---------------------------------------------------------------------------

/// A persistent worker pool. `install` routes every parallel region of the
/// closure through this pool's workers (restored even on panic); the
/// workers are spawned once on first use and parked between regions, and
/// joined when the pool is dropped.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.inner.threads)
            .finish()
    }
}

struct Restore(usize, Option<Arc<PoolInner>>);

impl Drop for Restore {
    fn drop(&mut self) {
        CURRENT_THREADS.with(|c| c.set(self.0));
        let prev = self.1.take();
        CURRENT_POOL.with(|c| *c.borrow_mut() = prev);
    }
}

impl ThreadPool {
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev_threads = CURRENT_THREADS.with(|c| c.replace(self.inner.threads));
        let prev_pool = CURRENT_POOL.with(|c| c.replace(Some(Arc::clone(&self.inner))));
        let _restore = Restore(prev_threads, prev_pool);
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.inner.threads
    }

    /// Lifetime counters of this pool.
    pub fn counters(&self) -> PoolCounters {
        self.inner.counters()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.inner.shutdown();
    }
}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.threads {
            Some(0) | None => default_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool {
            inner: PoolInner::new(threads),
        })
    }
}

/// Run `f` over `items` on the installed pool (or the process-wide one).
fn run_parallel<I, F>(items: Vec<I>, f: F)
where
    I: Send,
    F: Fn(I) + Sync,
{
    let nthreads = current_num_threads().max(1);
    if nthreads == 1 || items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let pool = CURRENT_POOL.with(|p| p.borrow().clone());
    match pool {
        Some(p) => p.run_region(items, &f),
        None => global_pool().run_region(items, &f),
    }
}

// ---------------------------------------------------------------------------
// Iterator facade
// ---------------------------------------------------------------------------

pub trait ParallelIterator: Sized {
    type Item: Send;

    /// Materialise the item list (refs, chunks, or owned values).
    fn drain(self) -> Vec<Self::Item>;

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        run_parallel(self.drain(), f);
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate(self)
    }
}

pub struct Enumerate<P>(P);

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);

    fn drain(self) -> Vec<Self::Item> {
        self.0.drain().into_iter().enumerate().collect()
    }
}

pub struct IntoParIter<T: Send>(Vec<T>);

impl<T: Send> ParallelIterator for IntoParIter<T> {
    type Item = T;

    fn drain(self) -> Vec<T> {
        self.0
    }
}

pub struct ParSliceIter<'a, T: Sync>(&'a [T]);

impl<'a, T: Sync> ParallelIterator for ParSliceIter<'a, T> {
    type Item = &'a T;

    fn drain(self) -> Vec<&'a T> {
        self.0.iter().collect()
    }
}

pub struct ParChunksMut<'a, T: Send>(&'a mut [T], usize);

impl<'a, T: Send> ParallelIterator for ParChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn drain(self) -> Vec<&'a mut [T]> {
        self.0.chunks_mut(self.1).collect()
    }
}

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = IntoParIter<T>;
    fn into_par_iter(self) -> Self::Iter {
        IntoParIter(self)
    }
}

macro_rules! impl_range_par_iter {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = IntoParIter<$t>;
            fn into_par_iter(self) -> Self::Iter {
                IntoParIter(self.collect())
            }
        }
        impl IntoParallelIterator for RangeInclusive<$t> {
            type Item = $t;
            type Iter = IntoParIter<$t>;
            fn into_par_iter(self) -> Self::Iter {
                IntoParIter(self.collect())
            }
        }
    )*};
}

impl_range_par_iter!(usize, u32, u64, i32, i64);

pub trait IntoParallelRefIterator<'data> {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParSliceIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        ParSliceIter(self)
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParSliceIter<'data, T>;
    fn par_iter(&'data self) -> Self::Iter {
        ParSliceIter(self)
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParChunksMut(self, chunk_size)
    }
}

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_all_rows() {
        let mut data = vec![0.0f64; 100];
        data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as f64 + 1.0;
            }
        });
        assert!(data.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn range_sum_matches_sequential() {
        let total = AtomicU64::new(0);
        (1..=100usize).into_par_iter().for_each(|i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
    }

    #[test]
    fn partitioning_is_order_preserving_and_balanced() {
        for len in [0usize, 1, 2, 3, 7, 16, 100, 101, 1023] {
            for nblocks in [1usize, 2, 3, 4, 7, 8, 33] {
                let blocks = partition_ranges(len, nblocks);
                assert!(blocks.len() <= nblocks);
                // order-preserving: concatenation is exactly 0..len
                let flat: Vec<usize> = blocks.iter().cloned().flatten().collect();
                let expect: Vec<usize> = (0..len).collect();
                assert_eq!(flat, expect, "len={len} nblocks={nblocks}");
                // maximally balanced: sizes differ by at most one
                let sizes: Vec<usize> = blocks.iter().map(|r| r.len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "len={len} nblocks={nblocks}: {sizes:?}");
            }
        }
    }

    #[test]
    fn pool_spawns_workers_once_across_regions() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        assert_eq!(pool.counters().workers_spawned, 0, "workers spawn lazily");
        let hits = AtomicU64::new(0);
        for _ in 0..10 {
            pool.install(|| {
                (0..64usize).into_par_iter().for_each(|_| {
                    hits.fetch_add(1, Ordering::Relaxed);
                });
            });
        }
        assert_eq!(hits.load(Ordering::Relaxed), 640);
        let c = pool.counters();
        assert_eq!(c.workers_spawned, 3, "one persistent worker set");
        assert_eq!(c.regions, 10);
        assert_eq!(c.items, 640);
    }

    #[test]
    fn skewed_region_rebalances_by_stealing() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let len = 64usize;
        let completed = AtomicUsize::new(0);
        pool.install(|| {
            (0..len).into_par_iter().for_each(|i| {
                if i == 0 {
                    // Block the first item (owned by the caller's queue)
                    // until every other item ran — only possible when the
                    // second worker steals the rest of the caller's block.
                    let t0 = std::time::Instant::now();
                    while completed.load(Ordering::Acquire) < len - 1 {
                        assert!(
                            t0.elapsed() < std::time::Duration::from_secs(30),
                            "stealing never drained the blocked queue"
                        );
                        std::thread::yield_now();
                    }
                }
                completed.fetch_add(1, Ordering::Release);
            });
        });
        assert_eq!(completed.load(Ordering::Relaxed), len);
        assert!(pool.counters().steals >= 1, "no steal recorded");
    }

    #[test]
    fn nested_parallelism_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let inner_threads = AtomicUsize::new(usize::MAX);
        let total = AtomicU64::new(0);
        pool.install(|| {
            (0..8usize).into_par_iter().for_each(|_| {
                inner_threads.fetch_min(current_num_threads(), Ordering::Relaxed);
                (0..4usize).into_par_iter().for_each(|i| {
                    total.fetch_add(i as u64, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(inner_threads.load(Ordering::Relaxed), 1);
        assert_eq!(total.load(Ordering::Relaxed), 8 * 6);
    }

    #[test]
    fn worker_index_is_dense_and_scoped() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(current_thread_index(), None);
        let seen = Mutex::new(Vec::new());
        pool.install(|| {
            (0..32usize).into_par_iter().for_each(|_| {
                seen.lock().unwrap().push(current_thread_index().unwrap());
            });
        });
        assert_eq!(current_thread_index(), None);
        let seen = seen.lock().unwrap();
        assert!(seen.iter().all(|&i| i < 3), "indices within 0..threads");
        assert!(seen.contains(&0), "the caller participates as slot 0");
    }

    #[test]
    fn poisoned_region_cancels_remaining_items() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let executed = AtomicUsize::new(0);
        let len = 256usize;
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                (0..len).into_par_iter().for_each(|i| {
                    if i == 0 {
                        // first item of the caller's queue: poisons the
                        // region before its ~127 siblings run
                        panic!("first item exploded");
                    }
                    executed.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_micros(50));
                });
            });
        }));
        assert!(r.is_err(), "the first panic must reach the caller");
        assert!(
            executed.load(Ordering::Relaxed) < len - 1,
            "poisoning should cancel at least some queued items"
        );
        assert!(pool.counters().cancelled >= 1, "no cancellation recorded");
        // no worker deadlocked or died: the pool serves the next region
        let total = AtomicU64::new(0);
        pool.install(|| {
            (0..16usize).into_par_iter().for_each(|i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 120);
    }

    #[test]
    fn panics_propagate_and_pool_survives() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                (0..16usize).into_par_iter().for_each(|i| {
                    if i == 7 {
                        panic!("item 7 exploded");
                    }
                });
            });
        }));
        assert!(r.is_err());
        // the pool still works afterwards
        let total = AtomicU64::new(0);
        pool.install(|| {
            (0..16usize).into_par_iter().for_each(|i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 120);
    }
}
