//! Minimal in-tree stand-in for the `criterion` crate.
//!
//! The build environment has no network access to a crate registry, so the
//! `[[bench]]` targets link against this shim instead. It keeps criterion's
//! surface (`benchmark_group`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!` / `criterion_main!`) but replaces the statistics
//! machinery with a plain min-of-N-samples timer printed to stdout — enough
//! to compare variants by hand, not to regress on microseconds.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Bencher {
    samples: usize,
    best: Option<Duration>,
}

impl Bencher {
    /// Time `f` over the configured sample count, keeping the best run.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            best = best.min(t0.elapsed());
        }
        self.best = Some(best);
    }
}

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(group: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{group}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{id}"), self.sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        best: None,
    };
    f(&mut b);
    match b.best {
        Some(best) => println!("  {label}: best {best:?} of {samples} samples"),
        None => println!("  {label}: no measurement recorded"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
