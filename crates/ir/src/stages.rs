//! The unrolled stage graph — the compiler-facing view of a pipeline.
//!
//! `TStencil` functions are expanded into one stage per smoothing step (this
//! is what lets the optimizer tile *across* smoothing iterations, §3.1);
//! every read is resolved to a stage-local input slot, and per-slot
//! dependence footprints are extracted for the polyhedral machinery.
//! Stages are emitted in topological order by construction.

use crate::expr::{Expr, Operand};
use crate::func::{BoundaryCond, FuncId, FuncKind, ParamId, ParityPattern, StepCount};
use crate::pipeline::{ParamBindings, Pipeline};
use gmg_poly::{AxisFootprint, BoxDomain, Footprint};
use std::collections::HashMap;

/// Identifier of a stage within a [`StageGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub usize);

/// Whether a stage is an external input or computed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    Input,
    Compute,
}

/// What an input slot of a stage is wired to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StageInput {
    /// Another stage's output.
    Stage(StageId),
    /// An implicit all-zero grid (zero-state `TStencil`s with no initial
    /// guess). Reads resolve to 0.0 without any storage.
    Zero,
}

/// One node of the unrolled DAG.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Display name, `<func>.s<step>` for unrolled `TStencil` steps.
    pub name: String,
    /// Originating pipeline function.
    pub func: FuncId,
    /// Step index within the originating `TStencil` (0 otherwise).
    pub step: usize,
    pub kind: StageKind,
    /// Interior iteration domain.
    pub domain: BoxDomain,
    /// Multigrid level tag (0 = coarsest).
    pub level: u32,
    /// Size parameter identity for storage classification.
    pub size_param: Option<ParamId>,
    /// Ghost-ring boundary condition.
    pub boundary: BoundaryCond,
    /// Input slots, in first-read order.
    pub inputs: Vec<StageInput>,
    /// Merged dependence footprint per slot (pointwise for `Zero` slots).
    pub footprints: Vec<Footprint>,
    /// Piecewise definition with reads rewritten to [`Operand::Slot`].
    /// Empty for inputs.
    pub cases: Vec<(ParityPattern, Expr)>,
    /// Parallel to `inputs`: true when the slot is wired to a coefficient
    /// input grid (`FuncData::coeff`) — those reads may appear as tap
    /// `cfactor`s after linearisation.
    pub coeff_slots: Vec<bool>,
    /// True when this stage's value is a pipeline output.
    pub is_output: bool,
}

impl Stage {
    /// Stencil radius hull across all slots with unit scaling (used by
    /// diamond-tiling eligibility checks).
    pub fn max_unit_radius(&self) -> i64 {
        self.footprints
            .iter()
            .flat_map(|fp| fp.0.iter())
            .filter(|a| a.num == 1 && a.den == 1)
            .map(|a| a.off_min.abs().max(a.off_max.abs()))
            .max()
            .unwrap_or(0)
    }
}

/// The unrolled, slot-resolved DAG of a pipeline.
#[derive(Clone, Debug)]
pub struct StageGraph {
    pub pipeline_name: String,
    pub stages: Vec<Stage>,
}

impl StageGraph {
    /// Unroll `pipeline` with the given parameter bindings.
    ///
    /// # Panics
    /// Panics when a `TStencil` step-count parameter is unbound or negative.
    pub fn build(pipeline: &Pipeline, bindings: &ParamBindings) -> StageGraph {
        let mut stages: Vec<Stage> = Vec::new();
        // final stage of each function; None = the function's value is the
        // implicit zero grid (a zero-step TStencil with no state)
        let mut final_stage: HashMap<FuncId, Option<StageId>> = HashMap::new();

        for (fid, data) in pipeline.iter_funcs() {
            match data.kind {
                FuncKind::Input => {
                    let sid = StageId(stages.len());
                    stages.push(Stage {
                        name: data.name.clone(),
                        func: fid,
                        step: 0,
                        kind: StageKind::Input,
                        domain: data.domain.clone(),
                        level: data.level,
                        size_param: data.size_param,
                        boundary: data.boundary,
                        inputs: Vec::new(),
                        footprints: Vec::new(),
                        cases: Vec::new(),
                        coeff_slots: Vec::new(),
                        is_output: false,
                    });
                    final_stage.insert(fid, Some(sid));
                }
                FuncKind::TStencil => {
                    let steps = match data.steps.expect("TStencil without step count") {
                        StepCount::Fixed(k) => k,
                        StepCount::Param(p) => {
                            let v = bindings.get(p).unwrap_or_else(|| {
                                panic!(
                                    "step-count parameter '{}' unbound for '{}'",
                                    pipeline.param_name(p),
                                    data.name
                                )
                            });
                            assert!(v >= 0, "negative step count for '{}'", data.name);
                            v as usize
                        }
                    };
                    let state0: Option<StageId> = match data.state {
                        Some(s) => *final_stage
                            .get(&s)
                            .expect("state function must precede TStencil"),
                        None => None,
                    };
                    let mut prev = state0;
                    for step in 0..steps {
                        let sid = StageId(stages.len());
                        let stage = resolve_stage(
                            pipeline,
                            fid,
                            data,
                            step,
                            format!("{}.s{}", data.name, step),
                            prev,
                            &final_stage,
                        );
                        stages.push(stage);
                        prev = Some(sid);
                    }
                    // zero steps: the TStencil's value is its state (or zero)
                    final_stage.insert(fid, prev);
                }
                FuncKind::Function | FuncKind::Restrict | FuncKind::Interp => {
                    let sid = StageId(stages.len());
                    let stage = resolve_stage(
                        pipeline,
                        fid,
                        data,
                        0,
                        data.name.clone(),
                        None,
                        &final_stage,
                    );
                    stages.push(stage);
                    final_stage.insert(fid, Some(sid));
                }
            }
        }

        // mark outputs
        for out in pipeline.outputs() {
            match final_stage.get(out) {
                Some(Some(sid)) => stages[sid.0].is_output = true,
                _ => panic!("pipeline output resolves to the zero grid"),
            }
        }

        StageGraph {
            pipeline_name: pipeline.name().to_string(),
            stages,
        }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when there are no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Number of compute stages — the paper's "Stages (# DAG nodes)"
    /// metric of Table 3.
    pub fn num_compute_stages(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.kind == StageKind::Compute)
            .count()
    }

    /// Stage by id.
    pub fn stage(&self, id: StageId) -> &Stage {
        &self.stages[id.0]
    }

    /// All producer→consumer edges with footprints.
    pub fn edges(&self) -> Vec<(StageId, StageId, Footprint)> {
        let mut out = Vec::new();
        for (ci, s) in self.stages.iter().enumerate() {
            for (slot, inp) in s.inputs.iter().enumerate() {
                if let StageInput::Stage(p) = inp {
                    out.push((*p, StageId(ci), s.footprints[slot].clone()));
                }
            }
        }
        out
    }

    /// Consumer stage ids of each stage (indexed by producer).
    pub fn consumers(&self) -> Vec<Vec<StageId>> {
        let mut out = vec![Vec::new(); self.stages.len()];
        for (p, c, _) in self.edges() {
            out[p.0].push(c);
        }
        out
    }

    /// Ids of stages with no consumers that are not outputs — dead stages
    /// (useful as a sanity diagnostic on hand-built pipelines).
    pub fn dead_stages(&self) -> Vec<StageId> {
        let cons = self.consumers();
        self.stages
            .iter()
            .enumerate()
            .filter(|(i, s)| s.kind == StageKind::Compute && !s.is_output && cons[*i].is_empty())
            .map(|(i, _)| StageId(i))
            .collect()
    }
}

/// Resolve one function (or one `TStencil` step) into a stage: rewrite reads
/// to slots and extract merged footprints.
fn resolve_stage(
    pipeline: &Pipeline,
    fid: FuncId,
    data: &crate::func::FuncData,
    step: usize,
    name: String,
    state_stage: Option<StageId>,
    final_stage: &HashMap<FuncId, Option<StageId>>,
) -> Stage {
    let ndims = data.domain.ndims();
    let mut inputs: Vec<StageInput> = Vec::new();
    let mut footprints: Vec<Option<Footprint>> = Vec::new();
    let mut coeff_slots: Vec<bool> = Vec::new();
    let mut slot_of: HashMap<StageInput, usize> = HashMap::new();

    let is_coeff_op = |op: &Operand| -> bool {
        match op {
            Operand::Func(f) => {
                let d = pipeline.func(*f);
                d.kind == FuncKind::Input && d.coeff
            }
            _ => false,
        }
    };

    let resolve_op = |op: &Operand| -> StageInput {
        match op {
            Operand::Func(f) => match final_stage
                .get(f)
                .unwrap_or_else(|| panic!("read of undeclared function in '{name}'"))
            {
                Some(sid) => StageInput::Stage(*sid),
                None => StageInput::Zero,
            },
            Operand::State => match state_stage {
                Some(sid) => StageInput::Stage(sid),
                None => StageInput::Zero,
            },
            Operand::Slot(_) => panic!("Slot operand in user expression"),
        }
    };

    let mut cases = Vec::with_capacity(data.cases.len());
    for (pat, expr) in &data.cases {
        // first pass: assign slots and accumulate footprints
        expr.visit_reads(&mut |op, access| {
            let inp = resolve_op(op);
            let slot = *slot_of.entry(inp).or_insert_with(|| {
                inputs.push(inp);
                footprints.push(None);
                coeff_slots.push(is_coeff_op(op));
                inputs.len() - 1
            });
            let fp = Footprint(
                access
                    .0
                    .iter()
                    .map(|a| AxisFootprint::new(a.num, a.den, a.off, a.off))
                    .collect(),
            );
            footprints[slot] = Some(match footprints[slot].take() {
                None => fp,
                Some(old) => old.merge(&fp),
            });
        });
        // second pass: rewrite operands to slots
        let rewritten = expr.map_operands(&mut |op| {
            let inp = resolve_op(op);
            Operand::Slot(slot_of[&inp])
        });
        cases.push((pat.clone(), rewritten));
    }

    let footprints = footprints
        .into_iter()
        .map(|fp| fp.unwrap_or_else(|| Footprint::uniform(ndims, AxisFootprint::pointwise())))
        .collect();

    Stage {
        name,
        func: fid,
        step,
        kind: StageKind::Compute,
        domain: data.domain.clone(),
        level: data.level,
        size_param: data.size_param,
        boundary: data.boundary,
        inputs,
        footprints,
        cases,
        coeff_slots,
        is_output: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Operand;
    use crate::stencil::{restrict_full_weighting_2d, stencil_2d};

    fn five_point() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.0],
            vec![0.0, -1.0, 0.0],
        ]
    }

    fn jacobi_defn(f: FuncId) -> Expr {
        Operand::State.at(&[0, 0])
            - 0.8 * (stencil_2d(Operand::State, &five_point(), 1.0) - Operand::Func(f).at(&[0, 0]))
    }

    #[test]
    fn tstencil_unrolls_into_chain() {
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, 15, 1);
        let f = p.input("F", 2, 15, 1);
        let sm = p.tstencil("sm", 2, 15, 1, StepCount::Fixed(3), Some(v), jacobi_defn(f));
        p.mark_output(sm);
        let g = StageGraph::build(&p, &ParamBindings::new());
        // 2 inputs + 3 steps
        assert_eq!(g.len(), 5);
        assert_eq!(g.num_compute_stages(), 3);
        // step 0 reads V; steps 1,2 read previous step
        let s0 = &g.stages[2];
        assert_eq!(s0.name, "sm.s0");
        assert!(s0.inputs.contains(&StageInput::Stage(StageId(0))));
        let s1 = &g.stages[3];
        assert!(s1.inputs.contains(&StageInput::Stage(StageId(2))));
        let s2 = &g.stages[4];
        assert!(s2.inputs.contains(&StageInput::Stage(StageId(3))));
        assert!(s2.is_output);
        assert!(!s1.is_output);
        // footprint of the state slot is the radius-1 stencil hull
        let state_slot = s1
            .inputs
            .iter()
            .position(|i| *i == StageInput::Stage(StageId(2)))
            .unwrap();
        let fp = &s1.footprints[state_slot];
        assert_eq!(fp.0[0].off_min, -1);
        assert_eq!(fp.0[0].off_max, 1);
        assert_eq!(s1.max_unit_radius(), 1);
    }

    #[test]
    fn runtime_step_count() {
        let mut p = Pipeline::new("t");
        let t = p.parameter("T");
        let v = p.input("V", 2, 15, 1);
        let f = p.input("F", 2, 15, 1);
        let sm = p_tstencil(&mut p, t, v, f);
        p.mark_output(sm);
        let mut b = ParamBindings::new();
        b.bind(t, 5);
        let g = StageGraph::build(&p, &b);
        assert_eq!(g.num_compute_stages(), 5);
    }

    fn p_tstencil(p: &mut Pipeline, t: crate::func::ParamId, v: FuncId, f: FuncId) -> FuncId {
        p.tstencil("sm", 2, 15, 1, StepCount::Param(t), Some(v), jacobi_defn(f))
    }

    #[test]
    #[should_panic(expected = "unbound")]
    fn unbound_step_param_panics() {
        let mut p = Pipeline::new("t");
        let t = p.parameter("T");
        let v = p.input("V", 2, 15, 1);
        let f = p.input("F", 2, 15, 1);
        p_tstencil(&mut p, t, v, f);
        let _ = StageGraph::build(&p, &ParamBindings::new());
    }

    #[test]
    fn zero_state_tstencil_reads_zero() {
        let mut p = Pipeline::new("t");
        let f = p.input("F", 2, 7, 0);
        let sm = p.tstencil("sm", 2, 7, 0, StepCount::Fixed(2), None, jacobi_defn(f));
        p.mark_output(sm);
        let g = StageGraph::build(&p, &ParamBindings::new());
        let s0 = &g.stages[1];
        assert!(s0.inputs.contains(&StageInput::Zero));
        // step 1 reads step 0, not zero
        let s1 = &g.stages[2];
        assert!(s1.inputs.contains(&StageInput::Stage(StageId(1))));
        assert!(!s1.inputs.contains(&StageInput::Zero));
    }

    #[test]
    fn zero_step_tstencil_forwards_state() {
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, 7, 0);
        let f = p.input("F", 2, 7, 0);
        let sm = p.tstencil("sm", 2, 7, 0, StepCount::Fixed(0), Some(v), jacobi_defn(f));
        // a consumer of sm reads V directly
        let c = p.function("c", 2, 7, 0, Operand::Func(sm).at(&[0, 0]) * 2.0);
        p.mark_output(c);
        let g = StageGraph::build(&p, &ParamBindings::new());
        assert_eq!(g.num_compute_stages(), 1);
        let cs = g.stages.last().unwrap();
        assert!(cs.inputs.contains(&StageInput::Stage(StageId(0))));
    }

    #[test]
    fn restrict_interp_footprints_and_edges() {
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, 15, 1);
        let r = p.restrict_fn("r", 2, 7, 0, restrict_full_weighting_2d(Operand::Func(v)));
        let e = p.interp_fn("e", 2, 15, 1, r);
        p.mark_output(e);
        let g = StageGraph::build(&p, &ParamBindings::new());
        let rs = &g.stages[1];
        assert_eq!(rs.footprints[0].0[0].num, 2);
        assert_eq!(rs.footprints[0].0[0].den, 1);
        let es = &g.stages[2];
        assert_eq!(es.footprints[0].0[0].num, 1);
        assert_eq!(es.footprints[0].0[0].den, 2);
        // interp merges offsets across its parity cases into [-1, 1]
        assert_eq!(es.footprints[0].0[0].off_min, -1);
        assert_eq!(es.footprints[0].0[0].off_max, 1);
        let edges = g.edges();
        assert_eq!(edges.len(), 2);
        assert_eq!(g.consumers()[1], vec![StageId(2)]);
        assert!(g.dead_stages().is_empty());
    }

    #[test]
    fn dead_stage_detection() {
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, 7, 0);
        let a = p.function("a", 2, 7, 0, Operand::Func(v).at(&[0, 0]) + 1.0);
        let _unused = p.function("unused", 2, 7, 0, Operand::Func(v).at(&[0, 0]) * 3.0);
        p.mark_output(a);
        let g = StageGraph::build(&p, &ParamBindings::new());
        assert_eq!(g.dead_stages().len(), 1);
    }

    #[test]
    fn slots_deduplicate_same_producer() {
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, 7, 0);
        // reads v twice with different offsets → one slot, merged footprint
        let a = p.function(
            "a",
            2,
            7,
            0,
            Operand::Func(v).at(&[0, -1]) + Operand::Func(v).at(&[2, 0]),
        );
        p.mark_output(a);
        let g = StageGraph::build(&p, &ParamBindings::new());
        let s = &g.stages[1];
        assert_eq!(s.inputs.len(), 1);
        assert_eq!(s.footprints[0].0[0].off_min, 0);
        assert_eq!(s.footprints[0].0[0].off_max, 2);
        assert_eq!(s.footprints[0].0[1].off_min, -1);
        assert_eq!(s.footprints[0].0[1].off_max, 0);
    }
}
