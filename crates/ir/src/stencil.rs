//! The `Stencil` construct and the standard multigrid operator expressions.
//!
//! `Stencil(f, (x,y), weights, scale)` from the paper translates a weight
//! matrix into a weighted sum of shifted reads; the centre defaults to
//! `m/2` per dimension and can be overridden. Zero weights generate no read.
//! This module also provides the canonical full-weighting restriction and
//! bi-/tri-linear interpolation case lists used by the `Restrict`/`Interp`
//! constructs.

use crate::expr::{Access, AxisAccess, Expr, Operand};
use crate::func::{Parity, ParityPattern};

/// 2-D `Stencil` with default centre `(rows/2, cols/2)`.
pub fn stencil_2d(f: Operand, weights: &[Vec<f64>], scale: f64) -> Expr {
    let cy = (weights.len() / 2) as i64;
    let cx = (weights.first().map_or(0, Vec::len) / 2) as i64;
    stencil_2d_center(f, weights, scale, (cy, cx))
}

/// 2-D `Stencil` with an explicit centre (paper: "a stencil with its center
/// off the default value can also be expressed").
pub fn stencil_2d_center(f: Operand, weights: &[Vec<f64>], scale: f64, center: (i64, i64)) -> Expr {
    let mut acc: Option<Expr> = None;
    for (i, row) in weights.iter().enumerate() {
        for (j, &w) in row.iter().enumerate() {
            if w == 0.0 {
                continue;
            }
            let off = [i as i64 - center.0, j as i64 - center.1];
            let term = weighted(f.at(&off), w);
            acc = Some(match acc {
                None => term,
                Some(a) => a + term,
            });
        }
    }
    finish(acc, scale)
}

/// 3-D `Stencil` (the paper's extension of the construct to 3-D grids) with
/// default centre.
pub fn stencil_3d(f: Operand, weights: &[Vec<Vec<f64>>], scale: f64) -> Expr {
    let cz = (weights.len() / 2) as i64;
    let cy = (weights.first().map_or(0, Vec::len) / 2) as i64;
    let cx = (weights.first().and_then(|p| p.first()).map_or(0, Vec::len) / 2) as i64;
    let mut acc: Option<Expr> = None;
    for (i, plane) in weights.iter().enumerate() {
        for (j, row) in plane.iter().enumerate() {
            for (k, &w) in row.iter().enumerate() {
                if w == 0.0 {
                    continue;
                }
                let off = [i as i64 - cz, j as i64 - cy, k as i64 - cx];
                let term = weighted(f.at(&off), w);
                acc = Some(match acc {
                    None => term,
                    Some(a) => a + term,
                });
            }
        }
    }
    finish(acc, scale)
}

fn weighted(read: Expr, w: f64) -> Expr {
    if w == 1.0 {
        read
    } else {
        w * read
    }
}

fn finish(acc: Option<Expr>, scale: f64) -> Expr {
    let e = acc.unwrap_or(Expr::Const(0.0));
    if scale == 1.0 {
        e
    } else {
        e * scale
    }
}

/// Full-weighting restriction in 2-D: `R(y,x) = Σ w_ij · in(2y+i, 2x+j) / 16`
/// with the `[1 2 1; 2 4 2; 1 2 1]` kernel (paper Figure 3, `restrict`).
pub fn restrict_full_weighting_2d(f: Operand) -> Expr {
    let w = [[1.0, 2.0, 1.0], [2.0, 4.0, 2.0], [1.0, 2.0, 1.0]];
    let mut acc: Option<Expr> = None;
    for (i, row) in w.iter().enumerate() {
        for (j, &wij) in row.iter().enumerate() {
            let access = Access(vec![
                AxisAccess::down(i as i64 - 1),
                AxisAccess::down(j as i64 - 1),
            ]);
            let term = weighted(f.read(access), wij);
            acc = Some(match acc {
                None => term,
                Some(a) => a + term,
            });
        }
    }
    finish(acc, 1.0 / 16.0)
}

/// Full-weighting restriction in 3-D: separable `[1 2 1]/4` per dimension
/// (total scale 1/64).
pub fn restrict_full_weighting_3d(f: Operand) -> Expr {
    let w1 = [1.0, 2.0, 1.0];
    let mut acc: Option<Expr> = None;
    for (i, &wi) in w1.iter().enumerate() {
        for (j, &wj) in w1.iter().enumerate() {
            for (k, &wk) in w1.iter().enumerate() {
                let access = Access(vec![
                    AxisAccess::down(i as i64 - 1),
                    AxisAccess::down(j as i64 - 1),
                    AxisAccess::down(k as i64 - 1),
                ]);
                let term = weighted(f.read(access), wi * wj * wk);
                acc = Some(match acc {
                    None => term,
                    Some(a) => a + term,
                });
            }
        }
    }
    finish(acc, 1.0 / 64.0)
}

/// Bilinear interpolation cases for 2-D `Interp` (paper Figure 3,
/// `interpolate`): one case per output parity, each an average of the
/// surrounding coarse points. Fine index `2j` aligns with coarse index `j`
/// (vertex-centred hierarchy, interior sizes `2^k − 1`).
pub fn interp_bilinear_cases(f: Operand) -> Vec<(ParityPattern, Expr)> {
    let pat = |py, px| ParityPattern(vec![py, px]);
    let rd = |oy: i64, ox: i64| f.read(Access(vec![AxisAccess::up(oy), AxisAccess::up(ox)]));
    vec![
        // even, even: coincides with a coarse point
        (pat(Parity::Even, Parity::Even), rd(0, 0)),
        // even, odd: average in x
        (pat(Parity::Even, Parity::Odd), 0.5 * (rd(0, -1) + rd(0, 1))),
        // odd, even: average in y
        (pat(Parity::Odd, Parity::Even), 0.5 * (rd(-1, 0) + rd(1, 0))),
        // odd, odd: average of the four corners
        (
            pat(Parity::Odd, Parity::Odd),
            0.25 * (rd(-1, -1) + rd(-1, 1) + rd(1, -1) + rd(1, 1)),
        ),
    ]
}

/// Trilinear interpolation cases for 3-D `Interp` (8 parity cases).
pub fn interp_trilinear_cases(f: Operand) -> Vec<(ParityPattern, Expr)> {
    let mut cases = Vec::with_capacity(8);
    for pz in [Parity::Even, Parity::Odd] {
        for py in [Parity::Even, Parity::Odd] {
            for px in [Parity::Even, Parity::Odd] {
                let offs = |p: Parity| -> Vec<i64> {
                    match p {
                        Parity::Even => vec![0],
                        Parity::Odd => vec![-1, 1],
                        Parity::Any => unreachable!(),
                    }
                };
                let (zs, ys, xs) = (offs(pz), offs(py), offs(px));
                let count = (zs.len() * ys.len() * xs.len()) as f64;
                let mut acc: Option<Expr> = None;
                for &oz in &zs {
                    for &oy in &ys {
                        for &ox in &xs {
                            let term = f.read(Access(vec![
                                AxisAccess::up(oz),
                                AxisAccess::up(oy),
                                AxisAccess::up(ox),
                            ]));
                            acc = Some(match acc {
                                None => term,
                                Some(a) => a + term,
                            });
                        }
                    }
                }
                let e = acc.unwrap();
                let e = if count > 1.0 { (1.0 / count) * e } else { e };
                cases.push((ParityPattern(vec![pz, py, px]), e));
            }
        }
    }
    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FuncId;

    fn f() -> Operand {
        Operand::Func(FuncId(0))
    }

    #[test]
    fn five_point_stencil_reads() {
        let w = vec![
            vec![0.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.0],
            vec![0.0, -1.0, 0.0],
        ];
        let e = stencil_2d(f(), &w, 1.0);
        assert_eq!(e.reads().len(), 5);
        // evaluate against a linear field: laplacian of linear field = 0
        let v = e.eval_at(&[5, 7], &mut |_, idx| (2 * idx[0] + 3 * idx[1]) as f64);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn paper_example_translation() {
        // Stencil(f, (x,y), [[0,1],[-1,2]], 1.0/16)
        // center of a 2x2 is (1,1):
        // → 1/16 * ( 1·f(x-1, y) + (-1)·f(x, y-1) + 2·f(x, y) )
        let w = vec![vec![0.0, 1.0], vec![-1.0, 2.0]];
        let e = stencil_2d(f(), &w, 1.0 / 16.0);
        assert_eq!(e.reads().len(), 3);
        let v = e.eval_at(&[0, 0], &mut |_, idx| match (idx[0], idx[1]) {
            (-1, 0) => 16.0,
            (0, -1) => 32.0,
            (0, 0) => 8.0,
            _ => panic!("unexpected read {idx:?}"),
        });
        assert!((v - (16.0 - 32.0 + 16.0) / 16.0).abs() < 1e-15);
    }

    #[test]
    fn stencil_3d_seven_point() {
        let mut w = vec![vec![vec![0.0; 3]; 3]; 3];
        w[1][1][1] = 6.0;
        w[0][1][1] = -1.0;
        w[2][1][1] = -1.0;
        w[1][0][1] = -1.0;
        w[1][2][1] = -1.0;
        w[1][1][0] = -1.0;
        w[1][1][2] = -1.0;
        let e = stencil_3d(f(), &w, 1.0);
        assert_eq!(e.reads().len(), 7);
        let v = e.eval_at(&[4, 4, 4], &mut |_, idx| {
            (idx[0] + idx[1] + idx[2]) as f64 // linear ⇒ laplacian 0
        });
        assert_eq!(v, 0.0);
    }

    #[test]
    fn restrict_2d_weights_sum_to_one() {
        let e = restrict_full_weighting_2d(f());
        assert_eq!(e.reads().len(), 9);
        // constant field restricts to the same constant
        let v = e.eval_at(&[3, 4], &mut |_, _| 5.0);
        assert!((v - 5.0).abs() < 1e-15);
        // check an access is the downsampling map
        let reads = e.reads();
        let (_, acc) = reads[0];
        assert_eq!(acc.0[0].num, 2);
        assert_eq!(acc.eval(&[3, 4]), vec![5, 7]);
    }

    #[test]
    fn restrict_3d_partition_of_unity() {
        let e = restrict_full_weighting_3d(f());
        assert_eq!(e.reads().len(), 27);
        let v = e.eval_at(&[2, 2, 2], &mut |_, _| 3.0);
        assert!((v - 3.0).abs() < 1e-14);
    }

    #[test]
    fn interp_2d_cases_cover_and_interpolate() {
        let cases = interp_bilinear_cases(f());
        assert_eq!(cases.len(), 4);
        // disjoint & covering on a sample of points
        for y in 0..4i64 {
            for x in 0..4i64 {
                let n = cases.iter().filter(|(p, _)| p.matches(&[y, x])).count();
                assert_eq!(n, 1);
            }
        }
        // linear coarse field u(j) = j interpolates exactly: fine x → x/2
        let field = |idx: &[i64]| (10 * idx[0] + idx[1]) as f64;
        for (pat, e) in &cases {
            for y in 2..6i64 {
                for x in 2..6i64 {
                    if !pat.matches(&[y, x]) {
                        continue;
                    }
                    let v = e.eval_at(&[y, x], &mut |_, idx| field(idx));
                    let expect = 10.0 * (y as f64 / 2.0) + x as f64 / 2.0;
                    assert!(
                        (v - expect).abs() < 1e-12,
                        "at ({y},{x}): got {v}, want {expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn interp_3d_cases_cover() {
        let cases = interp_trilinear_cases(f());
        assert_eq!(cases.len(), 8);
        for z in 0..2i64 {
            for y in 0..2i64 {
                for x in 0..2i64 {
                    let n = cases.iter().filter(|(p, _)| p.matches(&[z, y, x])).count();
                    assert_eq!(n, 1);
                }
            }
        }
        // constant field reproduces exactly in every case
        for (_, e) in &cases {
            let v = e.eval_at(&[5, 5, 5], &mut |_, _| 2.0);
            assert!((v - 2.0).abs() < 1e-15);
        }
    }

    #[test]
    fn zero_weights_skipped() {
        let w = vec![vec![0.0, 0.0], vec![0.0, 0.0]];
        let e = stencil_2d(f(), &w, 3.0);
        assert_eq!(e.reads().len(), 0);
        assert_eq!(e.eval_const(), Some(0.0));
    }
}
