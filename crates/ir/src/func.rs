//! Pipeline function metadata: ids, kinds, parity patterns, boundary
//! conditions and parameters.

use crate::expr::Expr;
use gmg_poly::BoxDomain;

/// Identifier of a pipeline function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub usize);

/// Identifier of a pipeline parameter (the `Parameter` construct).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// Step count of a `TStencil`: fixed at build time or bound at run time via
/// a parameter (the paper notes `TStencil` "allows initialization of the
/// parameter T at runtime").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepCount {
    Fixed(usize),
    Param(ParamId),
}

/// Per-dimension parity selector for piecewise (`Case`) definitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Parity {
    /// Matches any index.
    Any,
    /// Matches even indices.
    Even,
    /// Matches odd indices.
    Odd,
}

impl Parity {
    /// Does `x` match this selector?
    #[inline]
    pub fn matches(self, x: i64) -> bool {
        match self {
            Parity::Any => true,
            Parity::Even => x.rem_euclid(2) == 0,
            Parity::Odd => x.rem_euclid(2) == 1,
        }
    }
}

/// A per-dimension parity pattern (outermost first). A point belongs to the
/// case whose pattern matches in every dimension; patterns in a definition
/// must be disjoint and together cover the domain (checked by
/// [`crate::validate`]).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ParityPattern(pub Vec<Parity>);

impl ParityPattern {
    /// The always-matching pattern for `ndims` dimensions.
    pub fn any(ndims: usize) -> Self {
        ParityPattern(vec![Parity::Any; ndims])
    }

    /// Does the point match in every dimension?
    pub fn matches(&self, p: &[i64]) -> bool {
        assert_eq!(self.0.len(), p.len(), "rank mismatch");
        self.0.iter().zip(p).all(|(par, &x)| par.matches(x))
    }

    /// Do two patterns overlap (can some point match both)?
    pub fn overlaps(&self, other: &ParityPattern) -> bool {
        assert_eq!(self.0.len(), other.0.len(), "rank mismatch");
        self.0.iter().zip(&other.0).all(|(a, b)| {
            !matches!(
                (a, b),
                (Parity::Even, Parity::Odd) | (Parity::Odd, Parity::Even)
            )
        })
    }
}

/// Boundary condition applied on a function's ghost ring.
///
/// This is the fragment of the paper's `Case` boundary support that the
/// evaluated benchmarks use: a constant Dirichlet value (0 for homogeneous
/// problems).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BoundaryCond {
    Dirichlet(f64),
}

impl Default for BoundaryCond {
    fn default() -> Self {
        BoundaryCond::Dirichlet(0.0)
    }
}

impl BoundaryCond {
    /// The value a ghost read yields.
    pub fn value(&self) -> f64 {
        match self {
            BoundaryCond::Dirichlet(v) => *v,
        }
    }
}

/// The construct a function was declared with. `Restrict` and `Interp` are
/// `Function`s with implied sampling factors (paper §2); the kind is kept for
/// validation (sampling-direction checks) and reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuncKind {
    /// External input grid.
    Input,
    /// Plain `Function` (pointwise or stencil).
    Function,
    /// Time-iterated stencil (pre-/post-smoothing).
    TStencil,
    /// Downsampling function (sampling factor 1/2 per dimension).
    Restrict,
    /// Upsampling function (sampling factor 2 per dimension).
    Interp,
}

/// A function's full record inside a [`crate::pipeline::Pipeline`].
#[derive(Clone, Debug)]
pub struct FuncData {
    pub name: String,
    pub kind: FuncKind,
    /// Interior iteration domain (1-based, ghost ring excluded).
    pub domain: BoxDomain,
    /// Multigrid level tag (0 = coarsest); used for scale relations,
    /// storage-class formation and reporting.
    pub level: u32,
    /// The size parameter this function's extents derive from, if any —
    /// full-array storage classes group by parameter identity (§3.2.2).
    pub size_param: Option<ParamId>,
    /// Piecewise definition; empty for inputs. Single-case definitions use
    /// [`ParityPattern::any`].
    pub cases: Vec<(ParityPattern, Expr)>,
    /// Number of smoothing steps for `TStencil` functions.
    pub steps: Option<StepCount>,
    /// The function whose value seeds step 0 of a `TStencil` (`None` ⇒ zero
    /// initial state, as in the recursive error cycles).
    pub state: Option<FuncId>,
    /// Ghost-ring boundary condition.
    pub boundary: BoundaryCond,
    /// True for `Input` grids holding problem *coefficients* (variable
    /// stencil weights) rather than solution/RHS data. Coefficient reads may
    /// multiply other reads and still linearise — they become tap
    /// `cfactor`s instead of defeating linearisation.
    pub coeff: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_matching() {
        assert!(Parity::Any.matches(3));
        assert!(Parity::Even.matches(0) && Parity::Even.matches(-2));
        assert!(Parity::Odd.matches(1) && Parity::Odd.matches(-1));
        assert!(!Parity::Even.matches(3));
    }

    #[test]
    fn pattern_matching() {
        let p = ParityPattern(vec![Parity::Even, Parity::Odd]);
        assert!(p.matches(&[2, 3]));
        assert!(!p.matches(&[2, 2]));
        assert!(ParityPattern::any(3).matches(&[1, 2, 3]));
    }

    #[test]
    fn pattern_overlap() {
        let ee = ParityPattern(vec![Parity::Even, Parity::Even]);
        let eo = ParityPattern(vec![Parity::Even, Parity::Odd]);
        let aa = ParityPattern::any(2);
        assert!(!ee.overlaps(&eo));
        assert!(ee.overlaps(&aa));
        assert!(ee.overlaps(&ee));
    }

    #[test]
    fn boundary_default_zero() {
        assert_eq!(BoundaryCond::default().value(), 0.0);
        assert_eq!(BoundaryCond::Dirichlet(2.5).value(), 2.5);
    }
}
