//! Expression AST with affine grid accesses.
//!
//! Expressions are built by the user-facing constructs ([`crate::stencil`],
//! the pipeline builders) and consumed by the optimizer's lowering pass and
//! the reference interpreter. Arithmetic operators are overloaded so DSL
//! programs read like the paper's Python (Figure 3):
//!
//! ```
//! use gmg_ir::expr::{Expr, Operand};
//! let v = Operand::Func(gmg_ir::FuncId(0));
//! let f = Operand::Func(gmg_ir::FuncId(1));
//! // v(y,x) - 0.8 * (lap - f(y,x))
//! let lap = v.at(&[0, 1]) + v.at(&[0, -1]) + v.at(&[1, 0]) + v.at(&[-1, 0])
//!     - 4.0 * v.at(&[0, 0]);
//! let e = v.at(&[0, 0]) - 0.8 * (lap - f.at(&[0, 0]));
//! assert!(e.reads().len() > 0);
//! ```

use crate::func::FuncId;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// What a read refers to before stage resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A pipeline function by id.
    Func(FuncId),
    /// The previous iterate of the enclosing `TStencil` (step `k-1`; at step
    /// 0 this is the `TStencil`'s initial state, or zero when there is none).
    State,
    /// After stage resolution: input slot `k` of the stage.
    Slot(usize),
}

impl Operand {
    /// A read of this operand at constant per-dimension offsets
    /// (`num = den = 1`) — the plain stencil access.
    pub fn at(self, offsets: &[i64]) -> Expr {
        Expr::Read {
            op: self,
            access: Access::offsets(offsets),
        }
    }

    /// A read with an explicit affine access.
    pub fn read(self, access: Access) -> Expr {
        Expr::Read { op: self, access }
    }
}

/// Per-dimension affine access `in = (num·out + off) / den`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AxisAccess {
    pub num: i64,
    pub den: i64,
    pub off: i64,
}

impl AxisAccess {
    /// Unit-stride access at constant offset.
    pub fn offset(off: i64) -> Self {
        AxisAccess {
            num: 1,
            den: 1,
            off,
        }
    }

    /// Downsampling access `in = 2·out + off` (the `Restrict` pattern).
    pub fn down(off: i64) -> Self {
        AxisAccess {
            num: 2,
            den: 1,
            off,
        }
    }

    /// Upsampling access `in = (out + off) / 2` (the `Interp` pattern).
    pub fn up(off: i64) -> Self {
        AxisAccess {
            num: 1,
            den: 2,
            off,
        }
    }

    /// Evaluate at an output coordinate using floor division (parity-checked
    /// reads are exact by construction; the interpreter uses floor).
    #[inline]
    pub fn eval(&self, x: i64) -> i64 {
        gmg_poly::div_floor(self.num * x + self.off, self.den)
    }
}

/// A multi-dimensional affine access, outermost dimension first.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Access(pub Vec<AxisAccess>);

impl Access {
    /// Unit-stride access at the given constant offsets.
    pub fn offsets(offs: &[i64]) -> Self {
        Access(offs.iter().map(|&o| AxisAccess::offset(o)).collect())
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.0.len()
    }

    /// Evaluate at an output point (outermost first).
    pub fn eval(&self, out: &[i64]) -> Vec<i64> {
        assert_eq!(out.len(), self.ndims());
        self.0.iter().zip(out).map(|(a, &x)| a.eval(x)).collect()
    }
}

/// The expression tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A floating-point literal.
    Const(f64),
    /// A grid read.
    Read {
        op: Operand,
        access: Access,
    },
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Div(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
}

impl Expr {
    /// All reads in the expression, in evaluation order.
    pub fn reads(&self) -> Vec<(&Operand, &Access)> {
        let mut out = Vec::new();
        self.visit_reads(&mut |op, acc| out.push((op, acc)));
        out
    }

    /// Visit every read.
    pub fn visit_reads<'a>(&'a self, f: &mut impl FnMut(&'a Operand, &'a Access)) {
        match self {
            Expr::Const(_) => {}
            Expr::Read { op, access } => f(op, access),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                a.visit_reads(f);
                b.visit_reads(f);
            }
            Expr::Neg(a) => a.visit_reads(f),
        }
    }

    /// Rewrite every read's operand.
    pub fn map_operands(&self, f: &mut impl FnMut(&Operand) -> Operand) -> Expr {
        match self {
            Expr::Const(c) => Expr::Const(*c),
            Expr::Read { op, access } => Expr::Read {
                op: f(op),
                access: access.clone(),
            },
            Expr::Add(a, b) => Expr::Add(Box::new(a.map_operands(f)), Box::new(b.map_operands(f))),
            Expr::Sub(a, b) => Expr::Sub(Box::new(a.map_operands(f)), Box::new(b.map_operands(f))),
            Expr::Mul(a, b) => Expr::Mul(Box::new(a.map_operands(f)), Box::new(b.map_operands(f))),
            Expr::Div(a, b) => Expr::Div(Box::new(a.map_operands(f)), Box::new(b.map_operands(f))),
            Expr::Neg(a) => Expr::Neg(Box::new(a.map_operands(f))),
        }
    }

    /// Fold to a constant if the expression contains no reads.
    pub fn eval_const(&self) -> Option<f64> {
        match self {
            Expr::Const(c) => Some(*c),
            Expr::Read { .. } => None,
            Expr::Add(a, b) => Some(a.eval_const()? + b.eval_const()?),
            Expr::Sub(a, b) => Some(a.eval_const()? - b.eval_const()?),
            Expr::Mul(a, b) => Some(a.eval_const()? * b.eval_const()?),
            Expr::Div(a, b) => Some(a.eval_const()? / b.eval_const()?),
            Expr::Neg(a) => Some(-a.eval_const()?),
        }
    }

    /// Evaluate at a point given a resolver for reads.
    ///
    /// `read(op, idx)` supplies the value of `op` at the (already
    /// access-mapped) index — the reference-interpreter hook.
    pub fn eval_at(&self, out: &[i64], read: &mut impl FnMut(&Operand, &[i64]) -> f64) -> f64 {
        match self {
            Expr::Const(c) => *c,
            Expr::Read { op, access } => {
                let idx = access.eval(out);
                read(op, &idx)
            }
            Expr::Add(a, b) => a.eval_at(out, read) + b.eval_at(out, read),
            Expr::Sub(a, b) => a.eval_at(out, read) - b.eval_at(out, read),
            Expr::Mul(a, b) => a.eval_at(out, read) * b.eval_at(out, read),
            Expr::Div(a, b) => a.eval_at(out, read) / b.eval_at(out, read),
            Expr::Neg(a) => -a.eval_at(out, read),
        }
    }

    /// Count of AST nodes (used in tests and compile statistics).
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Read { .. } => 1,
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) | Expr::Div(a, b) => {
                1 + a.size() + b.size()
            }
            Expr::Neg(a) => 1 + a.size(),
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $variant:ident) => {
        impl $trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$variant(Box::new(self), Box::new(rhs))
            }
        }
        impl $trait<f64> for Expr {
            type Output = Expr;
            fn $method(self, rhs: f64) -> Expr {
                Expr::$variant(Box::new(self), Box::new(Expr::Const(rhs)))
            }
        }
        impl $trait<Expr> for f64 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::$variant(Box::new(Expr::Const(self)), Box::new(rhs))
            }
        }
    };
}

impl_binop!(Add, add, Add);
impl_binop!(Sub, sub, Sub);
impl_binop!(Mul, mul, Mul);
impl_binop!(Div, div, Div);

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FuncId;

    fn f0() -> Operand {
        Operand::Func(FuncId(0))
    }

    #[test]
    fn access_eval() {
        let a = Access::offsets(&[1, -1]);
        assert_eq!(a.eval(&[5, 5]), vec![6, 4]);
        let down = Access(vec![AxisAccess::down(-1), AxisAccess::down(1)]);
        assert_eq!(down.eval(&[3, 3]), vec![5, 7]);
        let up = Access(vec![AxisAccess::up(0), AxisAccess::up(1)]);
        assert_eq!(up.eval(&[6, 5]), vec![3, 3]);
    }

    #[test]
    fn operators_build_tree() {
        let e = f0().at(&[0, 0]) * 2.0 + 1.0 - f0().at(&[1, 0]) / 4.0;
        assert_eq!(e.reads().len(), 2);
        assert!(e.size() >= 7);
    }

    #[test]
    fn eval_const_folds() {
        let e = (Expr::Const(2.0) + 3.0) * 4.0 - 1.0;
        assert_eq!(e.eval_const(), Some(19.0));
        let e2 = -(Expr::Const(6.0) / 2.0);
        assert_eq!(e2.eval_const(), Some(-3.0));
        let with_read = Expr::Const(1.0) + f0().at(&[0]);
        assert_eq!(with_read.eval_const(), None);
    }

    #[test]
    fn eval_at_uses_access() {
        // e = f(y, x+1) + 10 * f(y-1, x)
        let e = f0().at(&[0, 1]) + 10.0 * f0().at(&[-1, 0]);
        let v = e.eval_at(&[2, 3], &mut |_, idx| (idx[0] * 100 + idx[1]) as f64);
        // f(2,4) = 204; f(1,3) = 103
        assert_eq!(v, 204.0 + 1030.0);
    }

    #[test]
    fn map_operands_rewrites() {
        let e = f0().at(&[0]) + Operand::State.at(&[1]);
        let r = e.map_operands(&mut |op| match op {
            Operand::State => Operand::Slot(7),
            other => *other,
        });
        let reads = r.reads();
        assert_eq!(*reads[0].0, Operand::Func(FuncId(0)));
        assert_eq!(*reads[1].0, Operand::Slot(7));
    }

    #[test]
    fn neg_eval() {
        let e = -(f0().at(&[0]));
        assert_eq!(e.eval_at(&[5], &mut |_, _| 3.0), -3.0);
    }
}
