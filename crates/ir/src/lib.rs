//! # gmg-ir — the PolyMG DSL
//!
//! This crate is the Rust counterpart of the PolyMage language extended for
//! multigrid in the SC'17 paper (Section 2). A program is a feed-forward
//! [`pipeline::Pipeline`] of functions defined over rectangular domains:
//!
//! * [`pipeline::Pipeline::input`] — a `Grid` (external input),
//! * [`pipeline::Pipeline::function`] — a `Function` with a pointwise or
//!   stencil definition,
//! * [`stencil`] — the `Stencil` construct: weight matrices/volumes with a
//!   default centre of `m/2` per dimension (paper §2),
//! * [`pipeline::Pipeline::tstencil`] — the `TStencil` construct introduced
//!   by PolyMG: a time-iterated stencil with a (possibly runtime-bound)
//!   step count, used for pre-/post-smoothing,
//! * [`pipeline::Pipeline::restrict_fn`] / [`pipeline::Pipeline::interp_fn`]
//!   — the `Restrict` and `Interp` constructs with their implied sampling
//!   factors (1/2 resp. 2) and parity-safe index arithmetic, so the
//!   "modulo-operator overhead prone to human error" (§2) never appears in
//!   user code.
//!
//! Boundary conditions: every function carries a Dirichlet boundary value
//! (default 0) applied on its ghost ring — the piecewise `Case` construct of
//! the paper restricted to what the evaluated benchmarks use. Parity-`Case`
//! piecewise definitions (used by `Interp`) are fully supported.
//!
//! The compiler-facing view is the unrolled [`stages::StageGraph`]: `TStencil`
//! functions are expanded into per-step stages, reads are resolved to stage
//! slots, and per-edge dependence [`gmg_poly::Footprint`]s are extracted.

pub mod expr;
pub mod func;
pub mod linear;
pub mod pipeline;
pub mod stages;
pub mod stencil;
pub mod validate;

pub use expr::{Access, AxisAccess, Expr, Operand};
pub use func::{BoundaryCond, FuncId, FuncKind, ParamId, Parity, ParityPattern, StepCount};
pub use linear::{linearize, linearize_with_coeffs, CoeffRead, LinearForm, Tap};
pub use pipeline::{ParamBindings, Pipeline};
pub use stages::{Stage, StageGraph, StageId, StageInput, StageKind};
