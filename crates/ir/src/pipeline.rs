//! The `Pipeline` — a feed-forward DAG of functions, built with the
//! constructs of Section 2 of the paper.
//!
//! A pipeline is constructed for concrete grid extents (the `Parameter`
//! construct records symbolic identity used for storage classification and
//! reporting; the optimizer and runtime work on the bound sizes, mirroring
//! how the paper's generated code is specialised per problem class). The
//! iteration loop over whole multigrid cycles is *external* to the pipeline,
//! exactly as in PolyMG: one pipeline instance describes one V-/W-cycle.

use crate::expr::{Expr, Operand};
use crate::func::{BoundaryCond, FuncData, FuncId, FuncKind, ParamId, ParityPattern, StepCount};
use crate::stencil::{interp_bilinear_cases, interp_trilinear_cases};
use gmg_poly::BoxDomain;
use std::collections::HashMap;

/// Runtime bindings for pipeline parameters (e.g. the `TStencil` step count).
#[derive(Clone, Debug, Default)]
pub struct ParamBindings(pub HashMap<ParamId, i64>);

impl ParamBindings {
    /// Empty bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `param` to `value` (overwrites).
    pub fn bind(&mut self, param: ParamId, value: i64) -> &mut Self {
        self.0.insert(param, value);
        self
    }

    /// Look up a binding.
    pub fn get(&self, param: ParamId) -> Option<i64> {
        self.0.get(&param).copied()
    }
}

/// A feed-forward pipeline of functions over structured grids.
#[derive(Clone, Debug)]
pub struct Pipeline {
    name: String,
    funcs: Vec<FuncData>,
    params: Vec<String>,
    outputs: Vec<FuncId>,
}

impl Pipeline {
    /// New, empty pipeline.
    pub fn new(name: &str) -> Self {
        Pipeline {
            name: name.to_string(),
            funcs: Vec::new(),
            params: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Pipeline name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declare a `Parameter`.
    pub fn parameter(&mut self, name: &str) -> ParamId {
        self.params.push(name.to_string());
        ParamId(self.params.len() - 1)
    }

    /// Name of a parameter.
    pub fn param_name(&self, p: ParamId) -> &str {
        &self.params[p.0]
    }

    /// Number of declared parameters.
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Declare an input `Grid` with interior size `n` per dimension at
    /// multigrid level `level`.
    pub fn input(&mut self, name: &str, ndims: usize, n: i64, level: u32) -> FuncId {
        self.push(FuncData {
            name: name.to_string(),
            kind: FuncKind::Input,
            domain: BoxDomain::interior(ndims, n),
            level,
            size_param: None,
            cases: Vec::new(),
            steps: None,
            state: None,
            boundary: BoundaryCond::default(),
            coeff: false,
        })
    }

    /// Declare a read-only *coefficient* input grid: variable stencil
    /// weights sampled per point. Coefficient reads may multiply other
    /// reads and still linearise (see `gmg_ir::linear::linearize_with_coeffs`).
    pub fn coeff_input(&mut self, name: &str, ndims: usize, n: i64, level: u32) -> FuncId {
        let id = self.input(name, ndims, n, level);
        self.funcs[id.0].coeff = true;
        id
    }

    /// Declare a plain `Function` with a single-case definition.
    pub fn function(&mut self, name: &str, ndims: usize, n: i64, level: u32, defn: Expr) -> FuncId {
        self.function_cases(
            name,
            ndims,
            n,
            level,
            vec![(ParityPattern::any(ndims), defn)],
        )
    }

    /// Declare a `Function` with a piecewise (`Case`) definition.
    pub fn function_cases(
        &mut self,
        name: &str,
        ndims: usize,
        n: i64,
        level: u32,
        cases: Vec<(ParityPattern, Expr)>,
    ) -> FuncId {
        assert!(!cases.is_empty(), "function '{name}' has no definition");
        self.push(FuncData {
            name: name.to_string(),
            kind: FuncKind::Function,
            domain: BoxDomain::interior(ndims, n),
            level,
            size_param: None,
            cases,
            steps: None,
            state: None,
            boundary: BoundaryCond::default(),
            coeff: false,
        })
    }

    /// Declare a `TStencil`: `steps` applications of `defn`, where
    /// [`Operand::State`] inside `defn` denotes the previous iterate. Step 0
    /// reads `state` (or zero when `None` — the error cycles start from a
    /// zero guess).
    #[allow(clippy::too_many_arguments)]
    pub fn tstencil(
        &mut self,
        name: &str,
        ndims: usize,
        n: i64,
        level: u32,
        steps: StepCount,
        state: Option<FuncId>,
        defn: Expr,
    ) -> FuncId {
        if let Some(s) = state {
            assert!(s.0 < self.funcs.len(), "state function out of range");
        }
        self.push(FuncData {
            name: name.to_string(),
            kind: FuncKind::TStencil,
            domain: BoxDomain::interior(ndims, n),
            level,
            size_param: None,
            cases: vec![(ParityPattern::any(ndims), defn)],
            steps: Some(steps),
            state,
            boundary: BoundaryCond::default(),
            coeff: false,
        })
    }

    /// Declare a `Restrict` function (sampling factor 1/2): the output
    /// domain has interior size `n` (the *coarse* size) and `defn` reads the
    /// fine input through downsampling accesses.
    pub fn restrict_fn(
        &mut self,
        name: &str,
        ndims: usize,
        n: i64,
        level: u32,
        defn: Expr,
    ) -> FuncId {
        self.push(FuncData {
            name: name.to_string(),
            kind: FuncKind::Restrict,
            domain: BoxDomain::interior(ndims, n),
            level,
            size_param: None,
            cases: vec![(ParityPattern::any(ndims), defn)],
            steps: None,
            state: None,
            boundary: BoundaryCond::default(),
            coeff: false,
        })
    }

    /// Declare an `Interp` function (sampling factor 2) with the standard
    /// bi-/tri-linear parity cases reading `input`. The output interior size
    /// is `n` (the *fine* size).
    pub fn interp_fn(
        &mut self,
        name: &str,
        ndims: usize,
        n: i64,
        level: u32,
        input: FuncId,
    ) -> FuncId {
        let cases = match ndims {
            2 => interp_bilinear_cases(Operand::Func(input)),
            3 => interp_trilinear_cases(Operand::Func(input)),
            _ => panic!("unsupported rank {ndims}"),
        };
        self.interp_fn_cases(name, ndims, n, level, cases)
    }

    /// Declare an `Interp` function with custom parity cases.
    pub fn interp_fn_cases(
        &mut self,
        name: &str,
        ndims: usize,
        n: i64,
        level: u32,
        cases: Vec<(ParityPattern, Expr)>,
    ) -> FuncId {
        assert!(!cases.is_empty(), "interp '{name}' has no cases");
        self.push(FuncData {
            name: name.to_string(),
            kind: FuncKind::Interp,
            domain: BoxDomain::interior(ndims, n),
            level,
            size_param: None,
            cases,
            steps: None,
            state: None,
            boundary: BoundaryCond::default(),
            coeff: false,
        })
    }

    /// Tag a function's extents as deriving from a size parameter — used for
    /// full-array storage classification (§3.2.2).
    pub fn set_size_param(&mut self, f: FuncId, p: ParamId) {
        assert!(p.0 < self.params.len(), "parameter out of range");
        self.funcs[f.0].size_param = Some(p);
    }

    /// Override a function's boundary condition.
    pub fn set_boundary(&mut self, f: FuncId, b: BoundaryCond) {
        self.funcs[f.0].boundary = b;
    }

    /// Mark a function as a pipeline output (live at the end of the cycle).
    pub fn mark_output(&mut self, f: FuncId) {
        if !self.outputs.contains(&f) {
            self.outputs.push(f);
        }
    }

    /// The declared outputs.
    pub fn outputs(&self) -> &[FuncId] {
        &self.outputs
    }

    /// Function record by id.
    pub fn func(&self, f: FuncId) -> &FuncData {
        &self.funcs[f.0]
    }

    /// Number of functions (including inputs).
    pub fn num_funcs(&self) -> usize {
        self.funcs.len()
    }

    /// Iterate over all functions with their ids.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &FuncData)> {
        self.funcs.iter().enumerate().map(|(i, f)| (FuncId(i), f))
    }

    /// Find a function by name (names are unique; enforced on insertion).
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(FuncId)
    }

    fn push(&mut self, data: FuncData) -> FuncId {
        assert!(
            self.func_by_name(&data.name).is_none(),
            "duplicate function name '{}'",
            data.name
        );
        // feed-forward check: definitions may only read earlier functions
        for (_, e) in &data.cases {
            e.visit_reads(&mut |op, _| match op {
                Operand::Func(f) => assert!(
                    f.0 < self.funcs.len(),
                    "function '{}' reads undeclared function {:?} — pipelines are feed-forward",
                    data.name,
                    f
                ),
                Operand::State => assert!(
                    data.kind == FuncKind::TStencil,
                    "State operand outside a TStencil in '{}'",
                    data.name
                ),
                Operand::Slot(_) => {
                    panic!("Slot operands are compiler-internal ('{}')", data.name)
                }
            });
        }
        self.funcs.push(data);
        FuncId(self.funcs.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Operand;
    use crate::stencil::{restrict_full_weighting_2d, stencil_2d};

    fn five_point() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.0],
            vec![0.0, -1.0, 0.0],
        ]
    }

    #[test]
    fn build_small_pipeline() {
        let mut p = Pipeline::new("demo");
        let n = 15;
        let v = p.input("V", 2, n, 1);
        let f = p.input("F", 2, n, 1);
        let sm = p.tstencil(
            "smooth",
            2,
            n,
            1,
            StepCount::Fixed(2),
            Some(v),
            Operand::State.at(&[0, 0])
                - 0.8
                    * (stencil_2d(Operand::State, &five_point(), 1.0)
                        - Operand::Func(f).at(&[0, 0])),
        );
        let r = p.restrict_fn(
            "restrict",
            2,
            7,
            0,
            restrict_full_weighting_2d(Operand::Func(sm)),
        );
        let e = p.interp_fn("interp", 2, n, 1, r);
        p.mark_output(e);
        assert_eq!(p.num_funcs(), 5);
        assert_eq!(p.outputs(), &[e]);
        assert_eq!(p.func(sm).kind, FuncKind::TStencil);
        assert_eq!(p.func(r).kind, FuncKind::Restrict);
        assert_eq!(p.func(e).cases.len(), 4);
        assert_eq!(p.func_by_name("restrict"), Some(r));
        assert_eq!(p.func_by_name("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_names_rejected() {
        let mut p = Pipeline::new("demo");
        p.input("V", 2, 7, 0);
        p.input("V", 2, 7, 0);
    }

    #[test]
    #[should_panic(expected = "feed-forward")]
    fn forward_reads_rejected() {
        let mut p = Pipeline::new("demo");
        p.function("f", 2, 7, 0, Operand::Func(FuncId(5)).at(&[0, 0]));
    }

    #[test]
    #[should_panic(expected = "State operand outside a TStencil")]
    fn state_outside_tstencil_rejected() {
        let mut p = Pipeline::new("demo");
        p.function("f", 2, 7, 0, Operand::State.at(&[0, 0]));
    }

    #[test]
    fn param_bindings() {
        let mut p = Pipeline::new("demo");
        let t = p.parameter("T");
        assert_eq!(p.param_name(t), "T");
        let mut b = ParamBindings::new();
        b.bind(t, 4);
        assert_eq!(b.get(t), Some(4));
        assert_eq!(b.get(ParamId(99)), None);
    }

    #[test]
    fn mark_output_dedups() {
        let mut p = Pipeline::new("demo");
        let v = p.input("V", 2, 7, 0);
        p.mark_output(v);
        p.mark_output(v);
        assert_eq!(p.outputs().len(), 1);
    }
}
