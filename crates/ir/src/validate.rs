//! Static validation of a stage graph.
//!
//! Checks performed (each produces a diagnostic string on failure):
//!
//! 1. **Bounds** — every read's footprint, applied to the consumer's domain,
//!    stays within the producer's domain dilated by the ghost depth (1).
//! 2. **Case coverage** — the parity patterns of a piecewise definition are
//!    pairwise disjoint and jointly cover every parity combination.
//! 3. **Parity exactness** — reads with a `/2` access only appear in cases
//!    whose pattern pins the parity so the division is exact (this is the
//!    property the `Interp` construct guarantees by design; hand-written
//!    cases are checked).
//! 4. **Sampling direction** — `Restrict` stages only use `num ∈ {1,2}`,
//!    `den = 1` accesses; `Interp` stages only `num = 1`, `den ∈ {1,2}`.

use crate::expr::{Expr, Operand};
use crate::func::{FuncKind, Parity, ParityPattern};
use crate::pipeline::Pipeline;
use crate::stages::{StageGraph, StageInput, StageKind};

/// Ghost-ring depth assumed by the runtime (one cell on every face).
pub const GHOST_DEPTH: i64 = 1;

/// Validate a stage graph against its pipeline. Returns all diagnostics
/// (empty ⇒ valid).
pub fn validate(pipeline: &Pipeline, graph: &StageGraph) -> Vec<String> {
    let mut errs = Vec::new();

    for stage in &graph.stages {
        if stage.kind == StageKind::Input {
            continue;
        }
        let sname = &stage.name;

        // 1. bounds
        for (slot, inp) in stage.inputs.iter().enumerate() {
            let StageInput::Stage(pid) = inp else {
                continue;
            };
            let prod = graph.stage(*pid);
            let fp = &stage.footprints[slot];
            for (d, (cons_iv, axis)) in stage.domain.0.iter().zip(&fp.0).enumerate() {
                let needed = axis.input_needed(cons_iv);
                let avail = prod.domain.0[d].dilate(GHOST_DEPTH);
                if !avail.contains_interval(&needed) {
                    errs.push(format!(
                        "{sname}: reads of '{}' need {needed} in dim {d} but only {avail} is available",
                        prod.name
                    ));
                }
            }
        }

        // 2. case coverage & disjointness
        let ndims = stage.domain.ndims();
        let mut combos = vec![vec![]];
        for _ in 0..ndims {
            let mut next = Vec::new();
            for c in &combos {
                for p in [0i64, 1] {
                    let mut c2: Vec<i64> = c.clone();
                    c2.push(p);
                    next.push(c2);
                }
            }
            combos = next;
        }
        for combo in &combos {
            let matching = stage
                .cases
                .iter()
                .filter(|(pat, _)| pat.matches(combo))
                .count();
            if matching == 0 {
                errs.push(format!(
                    "{sname}: no case covers parity combination {combo:?}"
                ));
            } else if matching > 1 {
                errs.push(format!(
                    "{sname}: {matching} cases overlap on parity combination {combo:?}"
                ));
            }
        }

        // 3. parity exactness + 4. sampling direction
        let kind = pipeline.func(stage.func).kind;
        for (pat, expr) in &stage.cases {
            check_reads(sname, kind, pat, expr, &mut errs);
        }
    }
    errs
}

fn check_reads(
    sname: &str,
    kind: FuncKind,
    pat: &ParityPattern,
    expr: &Expr,
    errs: &mut Vec<String>,
) {
    expr.visit_reads(&mut |op, access| {
        debug_assert!(matches!(op, Operand::Slot(_)));
        for (d, a) in access.0.iter().enumerate() {
            if !(a.den == 1 || a.den == 2) || !(a.num == 1 || a.num == 2) {
                errs.push(format!(
                    "{sname}: unsupported access scaling {}/{} in dim {d}",
                    a.num, a.den
                ));
                continue;
            }
            if a.den == 2 {
                // num must be 1 (reduced) and parity must make num·x + off even
                match pat.0[d] {
                    Parity::Any => errs.push(format!(
                        "{sname}: /2 access in dim {d} requires a parity-pinned case"
                    )),
                    Parity::Even => {
                        if a.off.rem_euclid(2) != 0 {
                            errs.push(format!(
                                "{sname}: /2 access offset {} not even-exact in dim {d}",
                                a.off
                            ));
                        }
                    }
                    Parity::Odd => {
                        if a.off.rem_euclid(2) != 1 {
                            errs.push(format!(
                                "{sname}: /2 access offset {} not odd-exact in dim {d}",
                                a.off
                            ));
                        }
                    }
                }
            }
            match kind {
                FuncKind::Restrict if a.den != 1 => {
                    errs.push(format!(
                        "{sname}: Restrict stage uses an upsampling access in dim {d}"
                    ));
                }
                FuncKind::Interp if a.num != 1 => {
                    errs.push(format!(
                        "{sname}: Interp stage uses a downsampling access in dim {d}"
                    ));
                }
                _ => {}
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Access, AxisAccess, Operand};
    use crate::func::StepCount;
    use crate::pipeline::{ParamBindings, Pipeline};
    use crate::stages::StageGraph;
    use crate::stencil::{restrict_full_weighting_2d, stencil_2d};

    fn build(p: &Pipeline) -> StageGraph {
        StageGraph::build(p, &ParamBindings::new())
    }

    #[test]
    fn valid_vcycle_fragment_passes() {
        let mut p = Pipeline::new("ok");
        let v = p.input("V", 2, 15, 1);
        let f = p.input("F", 2, 15, 1);
        let five = vec![
            vec![0.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.0],
            vec![0.0, -1.0, 0.0],
        ];
        let sm = p.tstencil(
            "sm",
            2,
            15,
            1,
            StepCount::Fixed(2),
            Some(v),
            Operand::State.at(&[0, 0])
                - 0.8 * (stencil_2d(Operand::State, &five, 1.0) - Operand::Func(f).at(&[0, 0])),
        );
        let r = p.restrict_fn("r", 2, 7, 0, restrict_full_weighting_2d(Operand::Func(sm)));
        let e = p.interp_fn("e", 2, 15, 1, r);
        p.mark_output(e);
        let g = build(&p);
        let errs = validate(&p, &g);
        assert!(errs.is_empty(), "unexpected diagnostics: {errs:?}");
    }

    #[test]
    fn out_of_bounds_read_detected() {
        let mut p = Pipeline::new("oob");
        let v = p.input("V", 2, 8, 0);
        let a = p.function("a", 2, 8, 0, Operand::Func(v).at(&[0, 3]));
        p.mark_output(a);
        let g = build(&p);
        let errs = validate(&p, &g);
        assert!(errs.iter().any(|e| e.contains("reads of 'V'")), "{errs:?}");
    }

    #[test]
    fn missing_parity_case_detected() {
        let mut p = Pipeline::new("gap");
        let v = p.input("V", 2, 7, 0);
        // only the even-even case present
        let cases = vec![(
            ParityPattern(vec![Parity::Even, Parity::Even]),
            Operand::Func(v).at(&[0, 0]),
        )];
        let a = p.function_cases("a", 2, 7, 0, cases);
        p.mark_output(a);
        let g = build(&p);
        let errs = validate(&p, &g);
        assert!(
            errs.iter().any(|e| e.contains("no case covers")),
            "{errs:?}"
        );
    }

    #[test]
    fn overlapping_cases_detected() {
        let mut p = Pipeline::new("ovl");
        let v = p.input("V", 2, 7, 0);
        let cases = vec![
            (ParityPattern::any(2), Operand::Func(v).at(&[0, 0])),
            (
                ParityPattern(vec![Parity::Even, Parity::Any]),
                Operand::Func(v).at(&[0, 0]),
            ),
        ];
        let a = p.function_cases("a", 2, 7, 0, cases);
        p.mark_output(a);
        let g = build(&p);
        let errs = validate(&p, &g);
        assert!(errs.iter().any(|e| e.contains("cases overlap")), "{errs:?}");
    }

    #[test]
    fn inexact_parity_division_detected() {
        let mut p = Pipeline::new("par");
        let v = p.input("V", 2, 7, 0);
        // even case but odd offset: (x+1)/2 not exact for even x
        let cases = vec![
            (
                ParityPattern(vec![Parity::Even, Parity::Even]),
                Operand::Func(v).read(Access(vec![AxisAccess::up(1), AxisAccess::up(0)])),
            ),
            (
                ParityPattern(vec![Parity::Even, Parity::Odd]),
                Expr::Const(0.0),
            ),
            (
                ParityPattern(vec![Parity::Odd, Parity::Any]),
                Expr::Const(0.0),
            ),
        ];
        let a = p.function_cases("a", 2, 14, 0, cases);
        p.mark_output(a);
        let g = build(&p);
        let errs = validate(&p, &g);
        assert!(
            errs.iter().any(|e| e.contains("not even-exact")),
            "{errs:?}"
        );
    }

    #[test]
    fn unpinned_parity_division_detected() {
        let mut p = Pipeline::new("unp");
        let v = p.input("V", 2, 7, 0);
        let a = p.function(
            "a",
            2,
            14,
            0,
            Operand::Func(v).read(Access(vec![AxisAccess::up(0), AxisAccess::up(0)])),
        );
        p.mark_output(a);
        let g = build(&p);
        let errs = validate(&p, &g);
        assert!(errs.iter().any(|e| e.contains("parity-pinned")), "{errs:?}");
    }

    use crate::expr::Expr;
}
