//! Linearisation of stage expressions.
//!
//! Every multigrid operator — Jacobi relaxation, residual, restriction,
//! interpolation, correction — is a *linear combination of affine reads plus
//! a constant*. The optimizer's kernel lowering relies on this: a linearised
//! case becomes a flat tap list executed by the specialised stencil kernels
//! in `gmg-runtime`. Non-linear expressions are legal in the DSL; they fall
//! back to the reference interpreter (and [`linearize`] returns `None`).

use crate::expr::{Access, Expr, Operand};

/// A read of a coefficient grid that scales a tap at run time.
#[derive(Clone, Debug, PartialEq)]
pub struct CoeffRead {
    /// Stage input slot of the coefficient grid.
    pub slot: usize,
    pub access: Access,
}

/// One tap of a linear form: `coeff · [cfactor(x) ·] slot[access(x)]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tap {
    /// Stage input slot index (the operand must be [`Operand::Slot`]).
    pub slot: usize,
    pub access: Access,
    pub coeff: f64,
    /// Optional run-time coefficient factor: the effective weight of the
    /// tap is `coeff · cfactor.slot[cfactor.access(x)]`. Produced only by
    /// [`linearize_with_coeffs`] for reads of coefficient-grid slots;
    /// `None` for the constant-coefficient operators of the paper.
    pub cfactor: Option<CoeffRead>,
}

/// A linearised expression: `bias + Σ taps`.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearForm {
    pub bias: f64,
    pub taps: Vec<Tap>,
}

impl LinearForm {
    /// Merge taps with identical (slot, access, cfactor), dropping zero
    /// coefficients.
    pub fn simplify(mut self) -> LinearForm {
        let mut merged: Vec<Tap> = Vec::with_capacity(self.taps.len());
        for t in self.taps.drain(..) {
            if let Some(m) = merged
                .iter_mut()
                .find(|m| m.slot == t.slot && m.access == t.access && m.cfactor == t.cfactor)
            {
                m.coeff += t.coeff;
            } else {
                merged.push(t);
            }
        }
        merged.retain(|t| t.coeff != 0.0);
        LinearForm {
            bias: self.bias,
            taps: merged,
        }
    }

    /// Sum of all coefficients (a partition-of-unity check for restriction
    /// and interpolation operators).
    pub fn coeff_sum(&self) -> f64 {
        self.taps.iter().map(|t| t.coeff).sum()
    }
}

/// Linearise an expression whose reads are slot operands.
///
/// Returns `None` when the expression is not affine in its reads (e.g. a
/// product of two reads, or a division by a read).
pub fn linearize(e: &Expr) -> Option<LinearForm> {
    linearize_with_coeffs(e, &[])
}

/// Linearise an expression, treating slots flagged in `coeff_slots` as
/// coefficient grids: a product `A[access] * read` (neither side constant)
/// linearises when one side is a bare read of a coefficient slot — it
/// becomes the [`Tap::cfactor`] of every tap on the other side. A product
/// involving an already coefficient-scaled form (degree ≥ 2 in the
/// coefficients) remains non-linear and falls back to the interpreter.
pub fn linearize_with_coeffs(e: &Expr, coeff_slots: &[bool]) -> Option<LinearForm> {
    let f = lin(e, coeff_slots)?;
    Some(f.simplify())
}

/// A bare coefficient-grid read: single unit-coefficient zero-bias tap on a
/// flagged slot, itself unscaled by another coefficient.
fn as_coeff_read(f: &LinearForm, coeff_slots: &[bool]) -> Option<CoeffRead> {
    if f.bias != 0.0 || f.taps.len() != 1 {
        return None;
    }
    let t = &f.taps[0];
    if t.coeff != 1.0 || t.cfactor.is_some() || !coeff_slots.get(t.slot).copied().unwrap_or(false) {
        return None;
    }
    Some(CoeffRead {
        slot: t.slot,
        access: t.access.clone(),
    })
}

/// Multiply a linear form by a run-time coefficient read. The bias turns
/// into a plain tap on the coefficient slot; taps pick up the read as their
/// `cfactor`. Fails when a tap already carries one (degree-2 in the
/// coefficients).
fn scale_by_coeff(mut f: LinearForm, c: CoeffRead) -> Option<LinearForm> {
    if f.taps.iter().any(|t| t.cfactor.is_some()) {
        return None;
    }
    for t in &mut f.taps {
        t.cfactor = Some(c.clone());
    }
    if f.bias != 0.0 {
        f.taps.push(Tap {
            slot: c.slot,
            access: c.access,
            coeff: f.bias,
            cfactor: None,
        });
        f.bias = 0.0;
    }
    Some(f)
}

fn lin(e: &Expr, coeff_slots: &[bool]) -> Option<LinearForm> {
    match e {
        Expr::Const(c) => Some(LinearForm {
            bias: *c,
            taps: vec![],
        }),
        Expr::Read { op, access } => {
            let slot = match op {
                Operand::Slot(s) => *s,
                _ => panic!("linearize requires slot-resolved expressions"),
            };
            Some(LinearForm {
                bias: 0.0,
                taps: vec![Tap {
                    slot,
                    access: access.clone(),
                    coeff: 1.0,
                    cfactor: None,
                }],
            })
        }
        Expr::Add(a, b) => {
            let (a, b) = (lin(a, coeff_slots)?, lin(b, coeff_slots)?);
            Some(combine(a, b, 1.0))
        }
        Expr::Sub(a, b) => {
            let (a, b) = (lin(a, coeff_slots)?, lin(b, coeff_slots)?);
            Some(combine(a, b, -1.0))
        }
        Expr::Mul(a, b) => {
            // one side constant: plain scaling
            if let Some(c) = a.eval_const() {
                let f = lin(b, coeff_slots)?;
                Some(scale(f, c))
            } else if let Some(c) = b.eval_const() {
                let f = lin(a, coeff_slots)?;
                Some(scale(f, c))
            } else {
                // neither constant: linear only if one side is a bare
                // coefficient-grid read
                let (fa, fb) = (lin(a, coeff_slots)?, lin(b, coeff_slots)?);
                if let Some(c) = as_coeff_read(&fa, coeff_slots) {
                    scale_by_coeff(fb, c)
                } else if let Some(c) = as_coeff_read(&fb, coeff_slots) {
                    scale_by_coeff(fa, c)
                } else {
                    None
                }
            }
        }
        Expr::Div(a, b) => {
            let c = b.eval_const()?;
            let f = lin(a, coeff_slots)?;
            Some(scale(f, 1.0 / c))
        }
        Expr::Neg(a) => {
            let f = lin(a, coeff_slots)?;
            Some(scale(f, -1.0))
        }
    }
}

fn combine(mut a: LinearForm, b: LinearForm, sign: f64) -> LinearForm {
    a.bias += sign * b.bias;
    a.taps.extend(b.taps.into_iter().map(|mut t| {
        t.coeff *= sign;
        t
    }));
    a
}

fn scale(mut f: LinearForm, c: f64) -> LinearForm {
    f.bias *= c;
    for t in &mut f.taps {
        t.coeff *= c;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(slot: usize, offs: &[i64]) -> Expr {
        Operand::Slot(slot).at(offs)
    }

    #[test]
    fn jacobi_linearises() {
        // v - 0.8/h² * (4v - v(±1)) + 0.8*f with h=1
        let lap =
            4.0 * s(0, &[0, 0]) - s(0, &[0, 1]) - s(0, &[0, -1]) - s(0, &[1, 0]) - s(0, &[-1, 0]);
        let e = s(0, &[0, 0]) - 0.8 * (lap - s(1, &[0, 0]));
        let f = linearize(&e).unwrap();
        assert_eq!(f.bias, 0.0);
        // center tap merged: 1 - 0.8*4 = -2.2
        let center = f
            .taps
            .iter()
            .find(|t| t.slot == 0 && t.access == Access::offsets(&[0, 0]))
            .unwrap();
        assert!((center.coeff - (1.0 - 3.2)).abs() < 1e-12);
        // four neighbour taps at +0.8
        let neigh: Vec<&Tap> = f
            .taps
            .iter()
            .filter(|t| t.slot == 0 && t.access != Access::offsets(&[0, 0]))
            .collect();
        assert_eq!(neigh.len(), 4);
        assert!(neigh.iter().all(|t| (t.coeff - 0.8).abs() < 1e-12));
        // f tap at +0.8
        let ft = f.taps.iter().find(|t| t.slot == 1).unwrap();
        assert!((ft.coeff - 0.8).abs() < 1e-12);
    }

    #[test]
    fn division_by_const_ok() {
        let e = s(0, &[0]) / 4.0;
        let f = linearize(&e).unwrap();
        assert_eq!(f.taps[0].coeff, 0.25);
    }

    #[test]
    fn nonlinear_rejected() {
        let e = s(0, &[0]) * s(1, &[0]);
        assert!(linearize(&e).is_none());
        let e2 = Expr::Const(1.0) / s(0, &[0]);
        assert!(linearize(&e2).is_none());
    }

    #[test]
    fn bias_propagates() {
        let e = 2.0 * (s(0, &[0]) + 3.0) - 1.0;
        let f = linearize(&e).unwrap();
        assert_eq!(f.bias, 5.0);
        assert_eq!(f.taps[0].coeff, 2.0);
    }

    #[test]
    fn zero_coeff_dropped() {
        let e = s(0, &[0]) - s(0, &[0]);
        let f = linearize(&e).unwrap();
        assert!(f.taps.is_empty());
        assert_eq!(f.bias, 0.0);
    }

    #[test]
    fn neg_scales() {
        let e = -(2.0 * s(0, &[1]));
        let f = linearize(&e).unwrap();
        assert_eq!(f.taps[0].coeff, -2.0);
    }

    #[test]
    fn coeff_sum_partition_of_unity() {
        let e = 0.25 * (s(0, &[0, 0]) + s(0, &[0, 1]) + s(0, &[1, 0]) + s(0, &[1, 1]));
        let f = linearize(&e).unwrap();
        assert!((f.coeff_sum() - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "slot-resolved")]
    fn func_operand_panics() {
        let e = Operand::Func(crate::func::FuncId(0)).at(&[0]);
        let _ = linearize(&e);
    }

    #[test]
    fn coeff_product_linearises_with_cfactor() {
        // slot 2 is a coefficient grid: A[0,0] * (v[0,1] - v[0,0])
        let coeff = [false, false, true];
        let e = s(2, &[0, 0]) * (s(0, &[0, 1]) - s(0, &[0, 0]));
        let f = linearize_with_coeffs(&e, &coeff).unwrap();
        assert_eq!(f.bias, 0.0);
        assert_eq!(f.taps.len(), 2);
        for t in &f.taps {
            assert_eq!(t.slot, 0);
            let c = t.cfactor.as_ref().expect("coefficient factor attached");
            assert_eq!(c.slot, 2);
            assert_eq!(c.access, Access::offsets(&[0, 0]));
        }
        // without the flag the same product stays non-linear
        assert!(linearize(&e).is_none());
    }

    #[test]
    fn coeff_times_bias_becomes_plain_tap() {
        let coeff = [false, true];
        // A[1] * (v[0] + 3)  =>  v-tap scaled by A, plus 3·A[1]
        let e = s(1, &[1]) * (s(0, &[0]) + 3.0);
        let f = linearize_with_coeffs(&e, &coeff).unwrap();
        assert_eq!(f.bias, 0.0);
        let vt = f.taps.iter().find(|t| t.slot == 0).unwrap();
        assert_eq!(vt.cfactor.as_ref().unwrap().slot, 1);
        let at = f.taps.iter().find(|t| t.slot == 1).unwrap();
        assert_eq!(at.coeff, 3.0);
        assert!(at.cfactor.is_none());
    }

    #[test]
    fn coeff_degree_two_rejected() {
        let coeff = [false, true, true];
        // A[0] * (B[0] * v[0]) is degree 2 in the coefficients
        let inner = s(1, &[0]) * s(0, &[0]);
        let e = s(2, &[0]) * inner;
        assert!(linearize_with_coeffs(&e, &coeff).is_none());
    }

    #[test]
    fn coeff_taps_merge_on_identical_factor() {
        let coeff = [false, true];
        let e = s(1, &[0]) * s(0, &[0]) + s(1, &[0]) * s(0, &[0]);
        let f = linearize_with_coeffs(&e, &coeff).unwrap();
        assert_eq!(f.taps.len(), 1);
        assert_eq!(f.taps[0].coeff, 2.0);
        // distinct accesses of the factor must not merge
        let e2 = s(1, &[0]) * s(0, &[0]) + s(1, &[1]) * s(0, &[0]);
        let f2 = linearize_with_coeffs(&e2, &coeff).unwrap();
        assert_eq!(f2.taps.len(), 2);
    }
}
