//! Linearisation of stage expressions.
//!
//! Every multigrid operator — Jacobi relaxation, residual, restriction,
//! interpolation, correction — is a *linear combination of affine reads plus
//! a constant*. The optimizer's kernel lowering relies on this: a linearised
//! case becomes a flat tap list executed by the specialised stencil kernels
//! in `gmg-runtime`. Non-linear expressions are legal in the DSL; they fall
//! back to the reference interpreter (and [`linearize`] returns `None`).

use crate::expr::{Access, Expr, Operand};

/// One tap of a linear form: `coeff · slot[access(x)]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tap {
    /// Stage input slot index (the operand must be [`Operand::Slot`]).
    pub slot: usize,
    pub access: Access,
    pub coeff: f64,
}

/// A linearised expression: `bias + Σ taps`.
#[derive(Clone, Debug, PartialEq)]
pub struct LinearForm {
    pub bias: f64,
    pub taps: Vec<Tap>,
}

impl LinearForm {
    /// Merge taps with identical (slot, access), dropping zero coefficients.
    pub fn simplify(mut self) -> LinearForm {
        let mut merged: Vec<Tap> = Vec::with_capacity(self.taps.len());
        for t in self.taps.drain(..) {
            if let Some(m) = merged
                .iter_mut()
                .find(|m| m.slot == t.slot && m.access == t.access)
            {
                m.coeff += t.coeff;
            } else {
                merged.push(t);
            }
        }
        merged.retain(|t| t.coeff != 0.0);
        LinearForm {
            bias: self.bias,
            taps: merged,
        }
    }

    /// Sum of all coefficients (a partition-of-unity check for restriction
    /// and interpolation operators).
    pub fn coeff_sum(&self) -> f64 {
        self.taps.iter().map(|t| t.coeff).sum()
    }
}

/// Linearise an expression whose reads are slot operands.
///
/// Returns `None` when the expression is not affine in its reads (e.g. a
/// product of two reads, or a division by a read).
pub fn linearize(e: &Expr) -> Option<LinearForm> {
    let f = lin(e)?;
    Some(f.simplify())
}

fn lin(e: &Expr) -> Option<LinearForm> {
    match e {
        Expr::Const(c) => Some(LinearForm {
            bias: *c,
            taps: vec![],
        }),
        Expr::Read { op, access } => {
            let slot = match op {
                Operand::Slot(s) => *s,
                _ => panic!("linearize requires slot-resolved expressions"),
            };
            Some(LinearForm {
                bias: 0.0,
                taps: vec![Tap {
                    slot,
                    access: access.clone(),
                    coeff: 1.0,
                }],
            })
        }
        Expr::Add(a, b) => {
            let (a, b) = (lin(a)?, lin(b)?);
            Some(combine(a, b, 1.0))
        }
        Expr::Sub(a, b) => {
            let (a, b) = (lin(a)?, lin(b)?);
            Some(combine(a, b, -1.0))
        }
        Expr::Mul(a, b) => {
            // one side must be a constant
            if let Some(c) = a.eval_const() {
                let f = lin(b)?;
                Some(scale(f, c))
            } else if let Some(c) = b.eval_const() {
                let f = lin(a)?;
                Some(scale(f, c))
            } else {
                None
            }
        }
        Expr::Div(a, b) => {
            let c = b.eval_const()?;
            let f = lin(a)?;
            Some(scale(f, 1.0 / c))
        }
        Expr::Neg(a) => {
            let f = lin(a)?;
            Some(scale(f, -1.0))
        }
    }
}

fn combine(mut a: LinearForm, b: LinearForm, sign: f64) -> LinearForm {
    a.bias += sign * b.bias;
    a.taps.extend(b.taps.into_iter().map(|mut t| {
        t.coeff *= sign;
        t
    }));
    a
}

fn scale(mut f: LinearForm, c: f64) -> LinearForm {
    f.bias *= c;
    for t in &mut f.taps {
        t.coeff *= c;
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(slot: usize, offs: &[i64]) -> Expr {
        Operand::Slot(slot).at(offs)
    }

    #[test]
    fn jacobi_linearises() {
        // v - 0.8/h² * (4v - v(±1)) + 0.8*f with h=1
        let lap =
            4.0 * s(0, &[0, 0]) - s(0, &[0, 1]) - s(0, &[0, -1]) - s(0, &[1, 0]) - s(0, &[-1, 0]);
        let e = s(0, &[0, 0]) - 0.8 * (lap - s(1, &[0, 0]));
        let f = linearize(&e).unwrap();
        assert_eq!(f.bias, 0.0);
        // center tap merged: 1 - 0.8*4 = -2.2
        let center = f
            .taps
            .iter()
            .find(|t| t.slot == 0 && t.access == Access::offsets(&[0, 0]))
            .unwrap();
        assert!((center.coeff - (1.0 - 3.2)).abs() < 1e-12);
        // four neighbour taps at +0.8
        let neigh: Vec<&Tap> = f
            .taps
            .iter()
            .filter(|t| t.slot == 0 && t.access != Access::offsets(&[0, 0]))
            .collect();
        assert_eq!(neigh.len(), 4);
        assert!(neigh.iter().all(|t| (t.coeff - 0.8).abs() < 1e-12));
        // f tap at +0.8
        let ft = f.taps.iter().find(|t| t.slot == 1).unwrap();
        assert!((ft.coeff - 0.8).abs() < 1e-12);
    }

    #[test]
    fn division_by_const_ok() {
        let e = s(0, &[0]) / 4.0;
        let f = linearize(&e).unwrap();
        assert_eq!(f.taps[0].coeff, 0.25);
    }

    #[test]
    fn nonlinear_rejected() {
        let e = s(0, &[0]) * s(1, &[0]);
        assert!(linearize(&e).is_none());
        let e2 = Expr::Const(1.0) / s(0, &[0]);
        assert!(linearize(&e2).is_none());
    }

    #[test]
    fn bias_propagates() {
        let e = 2.0 * (s(0, &[0]) + 3.0) - 1.0;
        let f = linearize(&e).unwrap();
        assert_eq!(f.bias, 5.0);
        assert_eq!(f.taps[0].coeff, 2.0);
    }

    #[test]
    fn zero_coeff_dropped() {
        let e = s(0, &[0]) - s(0, &[0]);
        let f = linearize(&e).unwrap();
        assert!(f.taps.is_empty());
        assert_eq!(f.bias, 0.0);
    }

    #[test]
    fn neg_scales() {
        let e = -(2.0 * s(0, &[1]));
        let f = linearize(&e).unwrap();
        assert_eq!(f.taps[0].coeff, -2.0);
    }

    #[test]
    fn coeff_sum_partition_of_unity() {
        let e = 0.25 * (s(0, &[0, 0]) + s(0, &[0, 1]) + s(0, &[1, 0]) + s(0, &[1, 1]));
        let f = linearize(&e).unwrap();
        assert!((f.coeff_sum() - 1.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "slot-resolved")]
    fn func_operand_panics() {
        let e = Operand::Func(crate::func::FuncId(0)).at(&[0]);
        let _ = linearize(&e);
    }
}
