//! Property tests for the DSL layer: construct semantics, linearisation,
//! and stage-graph unrolling.

use gmg_ir::expr::Operand;
use gmg_ir::stencil::{stencil_2d, stencil_2d_center, stencil_3d};
use gmg_ir::{linearize, ParamBindings, Pipeline, StepCount};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Stencil` evaluates exactly to the weighted sum it denotes, for
    /// arbitrary weight matrices.
    #[test]
    fn stencil_2d_is_weighted_sum(
        w in proptest::collection::vec(
            proptest::collection::vec(-3.0f64..3.0, 1..4), 1..4),
        scale in -2.0f64..2.0,
        y in 0i64..5,
        x in 0i64..5,
    ) {
        let e = stencil_2d(Operand::Slot(0), &w, scale);
        let field = |idx: &[i64]| (7 * idx[0] + 3 * idx[1]) as f64 * 0.5 + 1.0;
        let got = e.eval_at(&[y, x], &mut |_, idx| field(idx));
        let cy = (w.len() / 2) as i64;
        let cx = (w[0].len() / 2) as i64;
        let mut want = 0.0;
        for (i, row) in w.iter().enumerate() {
            for (j, &wij) in row.iter().enumerate() {
                if wij != 0.0 {
                    want += wij * field(&[y + i as i64 - cy, x + j as i64 - cx]);
                }
            }
        }
        want *= scale;
        prop_assert!((got - want).abs() < 1e-9, "{} vs {}", got, want);
    }

    /// Off-centre stencils shift the reads as specified.
    #[test]
    fn stencil_center_shifts(cy in 0i64..2, cx in 0i64..2) {
        let w = vec![vec![1.0, 2.0], vec![4.0, 8.0]];
        let e = stencil_2d_center(Operand::Slot(0), &w, 1.0, (cy, cx));
        // read field = 1 at (cy-offset) positions only; evaluating at (0,0)
        // must weight position (i-cy, j-cx)
        let got = e.eval_at(&[0, 0], &mut |_, idx| {
            if idx == [0 - cy, 0 - cx] { 1.0 } else { 0.0 }
        });
        prop_assert_eq!(got, w[0][0]);
    }

    /// Linearisation of random affine expressions matches direct
    /// evaluation (richer operator mix than the unit tests).
    #[test]
    fn linearize_random_affine(
        coeffs in proptest::collection::vec(-2.0f64..2.0, 1..6),
        offs in proptest::collection::vec(-2i64..3, 1..6),
        k in -3.0f64..3.0,
    ) {
        let n = coeffs.len().min(offs.len());
        let mut e = gmg_ir::Expr::Const(k);
        for i in 0..n {
            let t = coeffs[i] * Operand::Slot(i % 2).at(&[offs[i], -offs[i]]);
            e = if i % 2 == 0 { e + t } else { e - t };
        }
        e = (e * 2.0 + 1.0) / 4.0;
        let form = linearize(&e).expect("affine expr must linearise");
        let field = |slot: usize, idx: &[i64]| {
            (slot as f64 * 11.0 + 1.0) + idx[0] as f64 * 2.5 - idx[1] as f64
        };
        let p = [3i64, -2];
        let direct = e.eval_at(&p, &mut |op, idx| match op {
            Operand::Slot(s) => field(*s, idx),
            _ => unreachable!(),
        });
        let mut lin = form.bias;
        for t in &form.taps {
            lin += t.coeff * field(t.slot, &t.access.eval(&p));
        }
        prop_assert!((direct - lin).abs() < 1e-9);
    }

    /// Stage-graph size is exactly `inputs + Σ steps` for smoother chains,
    /// independent of step counts.
    #[test]
    fn unroll_counts(s1 in 0usize..6, s2 in 0usize..6) {
        let mut p = Pipeline::new("t");
        let v = p.input("V", 2, 15, 0);
        let f = p.input("F", 2, 15, 0);
        let five = vec![
            vec![0.0, -1.0, 0.0],
            vec![-1.0, 4.0, -1.0],
            vec![0.0, -1.0, 0.0],
        ];
        let a = p.tstencil(
            "a", 2, 15, 0, StepCount::Fixed(s1), Some(v),
            Operand::State.at(&[0, 0])
                - 0.1 * (stencil_2d(Operand::State, &five, 1.0) - Operand::Func(f).at(&[0, 0])),
        );
        let b = p.tstencil(
            "b", 2, 15, 0, StepCount::Fixed(s2), Some(a),
            Operand::State.at(&[0, 0])
                - 0.1 * (stencil_2d(Operand::State, &five, 1.0) - Operand::Func(f).at(&[0, 0])),
        );
        // consumer so zero-step chains still resolve
        let c = p.function("c", 2, 15, 0, Operand::Func(b).at(&[0, 0]) * 2.0);
        p.mark_output(c);
        let g = gmg_ir::StageGraph::build(&p, &ParamBindings::new());
        prop_assert_eq!(g.len(), 2 + s1 + s2 + 1);
        prop_assert!(gmg_ir::validate::validate(&p, &g).is_empty());
    }

    /// 3-D stencils with symmetric weights annihilate linear fields when
    /// the weights sum to zero.
    #[test]
    fn stencil_3d_zero_sum_annihilates_linear(c in 0.1f64..3.0) {
        let mut w = vec![vec![vec![0.0; 3]; 3]; 3];
        w[1][1][1] = -6.0 * c;
        for (z, y, x) in [(0,1,1),(2,1,1),(1,0,1),(1,2,1),(1,1,0),(1,1,2)] {
            w[z][y][x] = c;
        }
        let e = stencil_3d(Operand::Slot(0), &w, 1.0);
        let v = e.eval_at(&[5, 6, 7], &mut |_, idx| {
            3.0 * idx[0] as f64 - 2.0 * idx[1] as f64 + idx[2] as f64
        });
        prop_assert!(v.abs() < 1e-9);
    }
}
