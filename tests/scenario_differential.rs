//! Scenario differential suite (DESIGN.md §18). Two pins:
//!
//! * **varcoef-with-ones ≡ constant twin, bitwise.** The
//!   variable-coefficient pipeline scales its finest-level operator taps by
//!   the external grid `A`; with `a ≡ 1` every scale (and the Jacobi
//!   update's division by `a`) is an IEEE identity, so the result must
//!   match the structural twin — the same split-operator stage layout
//!   *without* the coefficient input, which lowers to the constant
//!   specialized/SIMD kernels — bit for bit, across variants and kernel
//!   tiers. Any drift means the coefficient path computes a different
//!   operator, not a rounding difference.
//! * **mixed-precision converges.** The f32 smoothing tier is an opt-in
//!   speed/accuracy trade: it must still drive the f64 residual down at a
//!   multigrid-like rate on the paper's Poisson problem (the floor it
//!   eventually hits sits far below the asserted reduction).

use proptest::prelude::*;

use polymg_repro::compiler::{PipelineOptions, Scenario, Variant};
use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
use polymg_repro::mg::cycles::build_varcoef_cycle_pipeline;
use polymg_repro::mg::scenario::{coeff_field, ones_field, scenario_runner, ScenarioSpec};
use polymg_repro::mg::solver::{residual_norm, setup_poisson, DslRunner};

const CYCLES: usize = 2;

fn config(ndims: usize, cycle: CycleType) -> MgConfig {
    let n = if ndims == 2 { 31 } else { 15 };
    let steps = SmoothSteps {
        pre: 2,
        coarse: 2,
        post: 2,
    };
    let mut cfg = MgConfig::new(ndims, n, cycle, steps);
    cfg.levels = 3;
    cfg
}

fn options(variant: Variant, ndims: usize, specialize: bool, simd: bool) -> PipelineOptions {
    let mut opts = PipelineOptions::for_variant(variant, ndims);
    opts.threads = 2;
    opts.specialize = specialize;
    opts.simd = simd;
    opts
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// `CYCLES` varcoef cycles with `a ≡ 1` vs the constant structural twin.
fn check_ones_twin(
    ndims: usize,
    cycle: CycleType,
    variant: Variant,
    specialize: bool,
    simd: bool,
) -> Result<(), String> {
    let cfg = config(ndims, cycle);
    let (v0, f, _) = setup_poisson(&cfg);

    let mut var = scenario_runner(
        &cfg,
        ScenarioSpec::new(Scenario::VarCoef),
        options(variant, ndims, specialize, simd),
        "ones",
        Some(ones_field(&cfg)),
    )
    .map_err(|e| format!("varcoef compile failed: {e}"))?;
    let twin_pipeline = build_varcoef_cycle_pipeline(&cfg, false);
    let mut twin = DslRunner::from_pipeline(
        &twin_pipeline,
        &cfg,
        options(variant, ndims, specialize, simd),
        "twin",
    )
    .map_err(|e| format!("twin compile failed: {e:?}"))?;

    let (mut vv, mut vt) = (v0.clone(), v0);
    for c in 0..CYCLES {
        var.cycle_with_stats(&mut vv, &f)
            .map_err(|e| format!("varcoef cycle {c}: {e:?}"))?;
        twin.cycle_with_stats(&mut vt, &f)
            .map_err(|e| format!("twin cycle {c}: {e:?}"))?;
    }
    if bits(&vv) != bits(&vt) {
        return Err(format!(
            "varcoef with a=1 diverged bitwise from the constant twin \
             ({} {cycle:?} {variant:?} specialize={specialize} simd={simd})",
            cfg.tag(),
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random rank × cycle shape × variant × kernel tier: the coefficient
    /// path with `a ≡ 1` is bitwise the constant twin.
    #[test]
    fn varcoef_ones_matches_constant_twin_bitwise(
        ndims_sel in 0u8..2,
        cycle_sel in 0u8..2,
        variant_sel in 0u8..2,
        spec_sel in 0u8..2,
        simd_sel in 0u8..2,
    ) {
        let ndims = if ndims_sel == 0 { 2 } else { 3 };
        let cycle = if cycle_sel == 0 { CycleType::V } else { CycleType::W };
        let variant = if variant_sel == 0 { Variant::OptPlus } else { Variant::Opt };
        if let Err(msg) = check_ones_twin(ndims, cycle, variant, spec_sel == 1, simd_sel == 1) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// Deterministic tier sweep of the same pin (CI-friendly fixed cases).
#[test]
fn varcoef_ones_twin_fixed_tiers() {
    for &(specialize, simd) in &[(false, false), (true, false), (true, true)] {
        for ndims in [2usize, 3] {
            check_ones_twin(ndims, CycleType::V, Variant::OptPlus, specialize, simd)
                .unwrap_or_else(|msg| panic!("{msg}"));
        }
    }
}

/// A genuinely variable coefficient must *change* the answer — guards
/// against the coefficient grid being silently ignored (in which case the
/// ones-differential above would pass vacuously).
#[test]
fn varcoef_field_changes_the_answer() {
    let cfg = config(2, CycleType::V);
    let (v0, f, _) = setup_poisson(&cfg);
    let run = |coeff: Vec<f64>| {
        let mut r = scenario_runner(
            &cfg,
            ScenarioSpec::new(Scenario::VarCoef),
            options(Variant::OptPlus, 2, false, true),
            "field",
            Some(coeff),
        )
        .expect("compile");
        let mut v = v0.clone();
        for _ in 0..CYCLES {
            r.cycle_with_stats(&mut v, &f).expect("cycle");
        }
        v
    };
    let ones = run(ones_field(&cfg));
    let field = run(coeff_field(&cfg));
    assert_ne!(
        bits(&ones),
        bits(&field),
        "a non-trivial coefficient field left the solve unchanged"
    );
}

/// Mixed-precision (f32 smoothing) still converges on the paper's Poisson
/// problem: the residual target sits well above the f32 round-off floor.
#[test]
fn mixed_precision_smoothing_converges() {
    // coarse=50 solves the coarsest level essentially exactly, so the
    // cycle converges at the true multigrid rate — with s444's token
    // coarse sweeps even the f64 path needs ~30 cycles for 1e-3 and the
    // assertion would measure the coarse solve, not the f32 smoothing.
    let steps = SmoothSteps {
        pre: 4,
        coarse: 50,
        post: 4,
    };
    let cfg = MgConfig::new(2, 63, CycleType::V, steps);
    let mut runner = scenario_runner(
        &cfg,
        ScenarioSpec {
            scenario: Scenario::Constant,
            mixed: true,
        },
        PipelineOptions::for_variant(Variant::OptPlus, 2),
        "mixed",
        None,
    )
    .expect("compile");
    let (mut v, f, _) = setup_poisson(&cfg);
    let fine = cfg.levels - 1;
    let (n, h) = (cfg.n_at(fine), cfg.h_at(fine));
    let r0 = residual_norm(2, n, h, &v, &f);
    for _ in 0..10 {
        runner.cycle_with_stats(&mut v, &f).expect("cycle");
    }
    let r = residual_norm(2, n, h, &v, &f);
    assert!(
        r < r0 * 1e-3,
        "mixed-precision cycles stalled: {r0:.3e} -> {r:.3e}"
    );
    // ...and it is a genuine precision trade: the f64 path from the same
    // options differs bitwise (if not, the f32 chain never engaged).
    let mut f64_runner = scenario_runner(
        &cfg,
        ScenarioSpec::new(Scenario::Constant),
        PipelineOptions::for_variant(Variant::OptPlus, 2),
        "f64",
        None,
    )
    .expect("compile");
    let (mut v64, f, _) = setup_poisson(&cfg);
    for _ in 0..10 {
        f64_runner.cycle_with_stats(&mut v64, &f).expect("cycle");
    }
    assert_ne!(
        bits(&v),
        bits(&v64),
        "mixed-precision result is bitwise the f64 result — the f32 smoother chain never ran"
    );
}
