//! Full-cycle C codegen: emit the Figure-8 C for complete V- and W-cycle
//! plans (all levels, both smoothing configs), compile with the system C
//! compiler and compare against the engine.

use gmg_multigrid::config::{CycleType, MgConfig, SmoothSteps};
use gmg_multigrid::cycles::build_cycle_pipeline;
use gmg_multigrid::solver::setup_poisson;
use gmg_runtime::Engine;
use polymg::{codegen, compile, PipelineOptions, Variant};
use std::process::Command;

fn have_cc() -> bool {
    Command::new("cc")
        .arg("--version")
        .output()
        .map(|o| o.status.success())
        .unwrap_or(false)
}

fn run_c_cycle(cfg: &MgConfig, variant: Variant) {
    if !have_cc() {
        eprintln!("no cc; skipping");
        return;
    }
    let pipeline = build_cycle_pipeline(cfg);
    let mut opts = PipelineOptions::for_variant(variant, 2);
    opts.tile_sizes = vec![8, 16];
    let plan = compile(&pipeline, &gmg_ir::ParamBindings::new(), opts).unwrap();
    let fn_name: String = plan
        .graph
        .pipeline_name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let c_src = codegen::emit_c(&plan);

    let (v0, f, _) = setup_poisson(cfg);
    let e = (cfg.n_at(cfg.levels - 1) + 2) as usize;
    // engine result for one cycle from a non-trivial iterate
    let mut v = v0.clone();
    for (i, x) in v.iter_mut().enumerate() {
        let (y, xx) = (i / e, i % e);
        if y > 0 && y < e - 1 && xx > 0 && xx < e - 1 {
            *x = ((i * 17) % 13) as f64 * 0.1 - 0.6;
        }
    }
    let mut engine = Engine::new(plan);
    let mut want = vec![0.0; e * e];
    engine
        .run(&[("V", &v), ("F", &f)], vec![("out", &mut want)])
        .unwrap();

    // generated C
    let dir = std::env::temp_dir().join(format!(
        "polymg_cgen_cycle_{}_{}",
        std::process::id(),
        fn_name
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let c_path = dir.join("gen.c");
    let bin = dir.join("gen.bin");
    let in_path = dir.join("in.raw");
    let out_path = dir.join("out.raw");
    let mut blob = Vec::new();
    for d in [&v, &f] {
        for x in d {
            blob.extend_from_slice(&x.to_le_bytes());
        }
    }
    std::fs::write(&in_path, blob).unwrap();
    let main_src = format!(
        r#"
#include <stdio.h>
int main(void) {{
  static double V[{len}], F[{len}], OUT[{len}];
  FILE* fi = fopen("{inp}", "rb");
  if (fread(V, 8, {len}, fi) != {len}) return 2;
  if (fread(F, 8, {len}, fi) != {len}) return 2;
  fclose(fi);
  pipeline_{fn_name}(V, F, OUT);
  FILE* fo = fopen("{outp}", "wb");
  fwrite(OUT, 8, {len}, fo); fclose(fo);
  return 0;
}}
"#,
        len = e * e,
        inp = in_path.display(),
        outp = out_path.display(),
    );
    std::fs::write(&c_path, format!("{c_src}\n{main_src}")).unwrap();
    let cc = Command::new("cc")
        .args(["-O2", "-o"])
        .arg(&bin)
        .arg(&c_path)
        .output()
        .unwrap();
    assert!(
        cc.status.success(),
        "cc failed for {}:\n{}",
        cfg.tag(),
        String::from_utf8_lossy(&cc.stderr)
    );
    assert!(Command::new(&bin).status().unwrap().success());
    let bytes = std::fs::read(&out_path).unwrap();
    let got: Vec<f64> = bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let max = got
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(
        max < 1e-11,
        "{} [{}]: generated C deviates by {max}",
        cfg.tag(),
        variant.label()
    );
}

#[test]
fn v_cycle_444_codegen() {
    run_c_cycle(
        &MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444()),
        Variant::OptPlus,
    );
}

#[test]
fn v_cycle_1000_codegen() {
    run_c_cycle(
        &MgConfig::new(2, 31, CycleType::V, SmoothSteps::s1000()),
        Variant::OptPlus,
    );
}

#[test]
fn w_cycle_444_codegen() {
    run_c_cycle(
        &MgConfig::new(2, 31, CycleType::W, SmoothSteps::s444()),
        Variant::OptPlus,
    );
}

#[test]
fn w_cycle_dtile_codegen() {
    run_c_cycle(
        &MgConfig::new(2, 31, CycleType::W, SmoothSteps::s444()),
        Variant::DtileOptPlus,
    );
}

#[test]
fn gsrb_codegen() {
    run_c_cycle(
        &MgConfig::new(2, 31, CycleType::V, SmoothSteps::s444()).with_gsrb(),
        Variant::OptPlus,
    );
}
