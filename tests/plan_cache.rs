//! Plan-cache integration: a cached plan must execute bitwise identically
//! to a freshly compiled one across cycle shapes and ranks, and repeated
//! runner construction must actually hit the global cache.

use polymg_repro::compiler::{PipelineOptions, PlanCache, Variant};
use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
use polymg_repro::mg::solver::{setup_poisson, DslRunner};

fn run_two_cycles(runner: &mut DslRunner, cfg: &MgConfig) -> Vec<f64> {
    let (mut v, f, _) = setup_poisson(cfg);
    for _ in 0..2 {
        runner
            .cycle_with_stats(&mut v, &f)
            .expect("cycle execution failed");
    }
    v
}

/// Cache hits return the same plan structure: results of a cache-served
/// runner are bitwise equal to a fresh compile, across 2-D/3-D V-/W-cycles.
#[test]
fn cached_plan_is_bitwise_identical_to_fresh_compile() {
    let configs = [
        MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444()),
        MgConfig::new(2, 63, CycleType::W, SmoothSteps::s444()),
        MgConfig::new(3, 31, CycleType::V, SmoothSteps::s444()),
        MgConfig::new(3, 31, CycleType::W, SmoothSteps::s444()),
    ];
    for cfg in configs {
        let opts = || PipelineOptions::for_variant(Variant::OptPlus, cfg.ndims);
        // First construction fills the cache (or hits one warmed by another
        // test in this binary — either way the second one must hit).
        let mut fresh = DslRunner::new(&cfg, opts(), "fresh").unwrap();
        let (hits0, _) = PlanCache::global().counters();
        let mut cached = DslRunner::new(&cfg, opts(), "cached").unwrap();
        let (hits1, _) = PlanCache::global().counters();
        assert!(
            hits1 > hits0,
            "identical construction must hit the plan cache ({} → {})",
            hits0,
            hits1
        );
        let a = run_two_cycles(&mut fresh, &cfg);
        let b = run_two_cycles(&mut cached, &cfg);
        assert!(
            a.iter().zip(&b).all(|(x, y)| x.to_bits() == y.to_bits()),
            "cached plan diverged from fresh compile ({}D {:?})",
            cfg.ndims,
            cfg.cycle
        );
    }
}

/// Different options never alias in the cache: a mutated option set compiles
/// its own plan (miss), and both plans coexist.
#[test]
fn distinct_options_miss_the_cache() {
    let cfg = MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444());
    // tile sizes no other compilation in this process uses, so the
    // miss/hit deltas below are attributable to this test alone
    let mut a = PipelineOptions::for_variant(Variant::OptPlus, 2);
    a.tile_sizes = vec![24, 520];
    let mut b = a.clone();
    b.tile_sizes = vec![40, 520];

    let _ = DslRunner::new(&cfg, a.clone(), "a").unwrap();
    let (_, misses0) = PlanCache::global().counters();
    let _ = DslRunner::new(&cfg, b, "b").unwrap();
    let (_, misses1) = PlanCache::global().counters();
    assert!(
        misses1 > misses0,
        "changed tile sizes must be a fresh fingerprint ({} → {})",
        misses0,
        misses1
    );
    // and the original keeps hitting
    let (hits0, _) = PlanCache::global().counters();
    let _ = DslRunner::new(&cfg, a, "a2").unwrap();
    let (hits1, _) = PlanCache::global().counters();
    assert!(hits1 > hits0);
}
