//! Numerical-behaviour tests: multigrid must not just run, it must act
//! like multigrid.

use polymg_repro::compiler::{PipelineOptions, Variant};
use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
use polymg_repro::mg::handopt::HandOpt;
use polymg_repro::mg::solver::{run_cycles, setup_poisson, DslRunner};

fn strong_coarse() -> SmoothSteps {
    SmoothSteps {
        pre: 3,
        coarse: 60,
        post: 3,
    }
}

fn factor(cfg: &MgConfig, iters: usize) -> f64 {
    let mut r = HandOpt::new(cfg.clone());
    let (mut v, f, _) = setup_poisson(cfg);
    run_cycles(&mut r, cfg, &mut v, &f, iters).conv_factor()
}

/// The defining property of multigrid: the convergence factor is (nearly)
/// independent of the problem size.
#[test]
fn h_independent_convergence_2d() {
    let mut factors = Vec::new();
    for (n, levels) in [(31i64, 3u32), (63, 4), (127, 5), (255, 6)] {
        let mut cfg = MgConfig::new(2, n, CycleType::V, strong_coarse());
        cfg.levels = levels;
        factors.push(factor(&cfg, 4));
    }
    let max = factors.iter().cloned().fold(0.0f64, f64::max);
    let min = factors.iter().cloned().fold(1.0f64, f64::min);
    assert!(max < 0.2, "V-cycle factor degraded with size: {factors:?}");
    assert!(
        max / min.max(1e-9) < 4.0,
        "convergence not h-independent: {factors:?}"
    );
}

#[test]
fn h_independent_convergence_3d() {
    let mut factors = Vec::new();
    for (n, levels) in [(15i64, 3u32), (31, 4), (63, 5)] {
        let mut cfg = MgConfig::new(3, n, CycleType::V, strong_coarse());
        cfg.levels = levels;
        factors.push(factor(&cfg, 3));
    }
    assert!(
        factors.iter().all(|&f| f < 0.25),
        "3-D V-cycle factors: {factors:?}"
    );
}

/// W- and F-cycles converge at least as fast per cycle as V-cycles.
#[test]
fn cycle_shape_ordering() {
    let mk = |cy| {
        let mut c = MgConfig::new(2, 127, cy, strong_coarse());
        c.levels = 5;
        c
    };
    let v = factor(&mk(CycleType::V), 4);
    let w = factor(&mk(CycleType::W), 4);
    let f = factor(&mk(CycleType::F), 4);
    assert!(w <= v * 1.1, "W ({w}) worse than V ({v})");
    assert!(f <= v * 1.1, "F ({f}) worse than V ({v})");
}

/// More smoothing steps improve the per-cycle factor (until saturation) —
/// the trade-off Ghysels & Vanroose study and the reason 10-0-0 exists.
#[test]
fn smoothing_steps_help() {
    let mk = |pre, post| {
        let mut c = MgConfig::new(
            2,
            63,
            CycleType::V,
            SmoothSteps {
                pre,
                coarse: 60,
                post,
            },
        );
        c.levels = 4;
        c
    };
    let f1 = factor(&mk(1, 1), 4);
    let f4 = factor(&mk(4, 4), 4);
    assert!(f4 < f1, "V(4,4) ({f4}) should beat V(1,1) ({f1})");
}

/// The optimized variants must not change numerics: convergence history is
/// identical between naive and opt+ (not merely similar).
#[test]
fn optimization_does_not_change_convergence_history() {
    let cfg = MgConfig::new(2, 63, CycleType::V, strong_coarse());
    let histories: Vec<Vec<f64>> = [Variant::Naive, Variant::OptPlus]
        .iter()
        .map(|&v| {
            let mut opts = PipelineOptions::for_variant(v, 2);
            opts.tile_sizes = vec![16, 32];
            let mut runner = DslRunner::new(&cfg, opts, v.label()).unwrap();
            let (mut vv, f, _) = setup_poisson(&cfg);
            run_cycles(&mut runner, &cfg, &mut vv, &f, 4).norms
        })
        .collect();
    for (a, b) in histories[0].iter().zip(&histories[1]) {
        assert!(
            (a - b).abs() <= 1e-12 * a.abs().max(1.0),
            "histories diverge: {a} vs {b}"
        );
    }
}

/// 10-0-0 (no coarse work at all) still reduces the residual — the cycle
/// degenerates to hierarchical smoothing of the error equation, which the
/// paper uses purely as a performance benchmark.
#[test]
fn ten_zero_zero_still_reduces_residual() {
    let cfg = MgConfig::new(2, 63, CycleType::V, SmoothSteps::s1000());
    let mut r = HandOpt::new(cfg.clone());
    let (mut v, f, _) = setup_poisson(&cfg);
    let res = run_cycles(&mut r, &cfg, &mut v, &f, 5);
    assert!(res.res_final() < res.res0 * 0.5, "{:?}", res.norms);
}
