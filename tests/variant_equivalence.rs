//! Whole-stack equivalence: every evaluated implementation (six of them)
//! must produce the same grids as the reference interpreter, for every
//! cycle shape, rank and smoothing configuration.

use polymg_repro::compiler::{PipelineOptions, Variant};
use polymg_repro::ir::ParamBindings;
use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
use polymg_repro::mg::cycles::build_cycle_pipeline;
use polymg_repro::mg::handopt::HandOpt;
use polymg_repro::mg::pluto::handopt_pluto;
use polymg_repro::mg::solver::{setup_poisson, CycleRunner, DslRunner};
use polymg_repro::runtime::interp::run_reference;

fn max_dev(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Run a config through every implementation and the interpreter; assert
/// agreement after `iters` cycles.
fn check(cfg: MgConfig, iters: usize) {
    let (v0, f, _) = setup_poisson(&cfg);

    // interpreter result: iterate the stage graph manually
    let pipeline = build_cycle_pipeline(&cfg);
    let graph = polymg_repro::ir::StageGraph::build(&pipeline, &ParamBindings::new());
    let mut v_ref = v0.clone();
    for _ in 0..iters {
        let values = run_reference(&graph, &[("V", &v_ref), ("F", &f)]);
        v_ref = values["out"].clone();
    }

    // all six implementations
    let mut runners: Vec<(String, Box<dyn CycleRunner>)> = vec![
        ("handopt".into(), Box::new(HandOpt::new(cfg.clone()))),
        (
            "handopt+pluto".into(),
            Box::new(handopt_pluto(cfg.clone(), 24, 3)),
        ),
    ];
    for variant in Variant::all() {
        let mut opts = PipelineOptions::for_variant(variant, cfg.ndims);
        opts.tile_sizes = if cfg.ndims == 2 {
            vec![16, 32]
        } else {
            vec![8, 8, 16]
        };
        opts.threads = 2;
        runners.push((
            variant.label().into(),
            Box::new(DslRunner::new(&cfg, opts, variant.label()).unwrap()),
        ));
    }

    for (label, mut runner) in runners {
        let mut v = v0.clone();
        for _ in 0..iters {
            runner.cycle(&mut v, &f);
        }
        let dev = max_dev(&v, &v_ref);
        assert!(
            dev < 1e-11,
            "{} deviates from the interpreter by {dev} on {}",
            label,
            cfg.tag()
        );
    }
}

#[test]
fn v_2d_444() {
    check(MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444()), 2);
}

#[test]
fn v_2d_1000() {
    check(MgConfig::new(2, 63, CycleType::V, SmoothSteps::s1000()), 2);
}

#[test]
fn w_2d_444() {
    check(MgConfig::new(2, 63, CycleType::W, SmoothSteps::s444()), 2);
}

#[test]
fn w_2d_1000() {
    check(MgConfig::new(2, 63, CycleType::W, SmoothSteps::s1000()), 2);
}

#[test]
fn f_2d_444() {
    check(MgConfig::new(2, 63, CycleType::F, SmoothSteps::s444()), 2);
}

#[test]
fn v_3d_444() {
    check(MgConfig::new(3, 31, CycleType::V, SmoothSteps::s444()), 2);
}

#[test]
fn v_3d_1000() {
    check(MgConfig::new(3, 31, CycleType::V, SmoothSteps::s1000()), 2);
}

#[test]
fn w_3d_444() {
    check(MgConfig::new(3, 31, CycleType::W, SmoothSteps::s444()), 1);
}

#[test]
fn w_3d_1000() {
    check(MgConfig::new(3, 31, CycleType::W, SmoothSteps::s1000()), 1);
}

#[test]
fn f_3d_1000() {
    check(MgConfig::new(3, 31, CycleType::F, SmoothSteps::s1000()), 1);
}

#[test]
fn asymmetric_smoothing_2_0_5() {
    check(
        MgConfig::new(
            2,
            63,
            CycleType::V,
            SmoothSteps {
                pre: 2,
                coarse: 0,
                post: 5,
            },
        ),
        2,
    );
}

#[test]
fn zero_pre_smoothing_like_nas() {
    check(
        MgConfig::new(
            2,
            63,
            CycleType::V,
            SmoothSteps {
                pre: 0,
                coarse: 3,
                post: 1,
            },
        ),
        2,
    );
}

#[test]
fn two_level_minimum() {
    let mut cfg = MgConfig::new(2, 63, CycleType::V, SmoothSteps::s444());
    cfg.levels = 2;
    check(cfg, 2);
}

#[test]
fn six_levels_deep() {
    let mut cfg = MgConfig::new(2, 127, CycleType::V, SmoothSteps::s444());
    cfg.levels = 6;
    check(cfg, 1);
}
