//! Plan-level invariants of the storage optimizer, checked over the full
//! benchmark matrix (every cycle shape × smoothing config × rank × variant).

use polymg_repro::compiler::{compile, CompiledPipeline, GroupTiling, PipelineOptions, Variant};
use polymg_repro::ir::{ParamBindings, StageInput, StageKind};
use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
use polymg_repro::mg::cycles::build_cycle_pipeline;

fn all_plans() -> Vec<(String, CompiledPipeline)> {
    let mut out = Vec::new();
    for ndims in [2usize, 3] {
        let n = if ndims == 2 { 63 } else { 31 };
        for cycle in [CycleType::V, CycleType::W, CycleType::F] {
            for steps in [SmoothSteps::s444(), SmoothSteps::s1000()] {
                let cfg = MgConfig::new(ndims, n, cycle, steps);
                let pipeline = build_cycle_pipeline(&cfg);
                for variant in Variant::all() {
                    let mut opts = PipelineOptions::for_variant(variant, ndims);
                    opts.tile_sizes = if ndims == 2 {
                        vec![16, 32]
                    } else {
                        vec![8, 8, 16]
                    };
                    let plan = compile(&pipeline, &ParamBindings::new(), opts)
                        .unwrap_or_else(|e| panic!("{}: {e:?}", cfg.tag()));
                    out.push((format!("{}/{}", cfg.tag(), variant.label()), plan));
                }
            }
        }
    }
    out
}

/// Every live compute stage appears in exactly one group; inputs in none.
#[test]
fn groups_partition_live_stages() {
    for (tag, plan) in all_plans() {
        let mut seen = vec![0usize; plan.graph.stages.len()];
        for g in &plan.groups {
            for s in &g.stages {
                seen[s.0] += 1;
                assert_eq!(
                    plan.graph.stage(*s).kind,
                    StageKind::Compute,
                    "{tag}: input stage in a group"
                );
            }
        }
        let live = polymg::grouping::live_stages(&plan.graph);
        for (i, st) in plan.graph.stages.iter().enumerate() {
            let expected = usize::from(st.kind == StageKind::Compute && live[i]);
            assert_eq!(
                seen[i], expected,
                "{tag}: stage {} seen {}x",
                st.name, seen[i]
            );
        }
    }
}

/// Every stage is storable: live-outs have arrays, group-internal stages
/// have scratch slots (or both), and the output stage's array is external.
#[test]
fn every_group_stage_has_storage() {
    for (tag, plan) in all_plans() {
        for g in &plan.groups {
            for (i, s) in g.stages.iter().enumerate() {
                let has_array = plan.storage.array_of_stage[s.0].is_some();
                let has_scratch = g.scratch_slot[i].is_some();
                if g.live_out[i] {
                    assert!(has_array, "{tag}: live-out {} lacks an array", s.0);
                }
                match g.tiling {
                    GroupTiling::Untiled => {
                        assert!(g.live_out[i], "{tag}: untiled non-live-out stage")
                    }
                    GroupTiling::Overlapped { .. } => assert!(
                        has_array || has_scratch,
                        "{tag}: stage {} has no storage",
                        s.0
                    ),
                    GroupTiling::Diamond { .. } | GroupTiling::MixedChain => {
                        // only the last step is live-out; intermediates use
                        // the modulo (resp. f32 ping-pong) buffers
                        if i + 1 == g.stages.len() {
                            assert!(g.live_out[i], "{tag}: chain tail not live-out");
                        }
                    }
                }
            }
        }
        // outputs external
        for (i, st) in plan.graph.stages.iter().enumerate() {
            if st.is_output {
                let a = plan.storage.array_of_stage[i].expect("output without array");
                assert!(
                    plan.storage.arrays[a].external,
                    "{tag}: output not external"
                );
            }
        }
    }
}

/// No array serves two stages whose live ranges overlap, and no group reads
/// an array that one of its live-outs writes (the §3.2.2 constraint).
#[test]
fn no_group_reads_an_array_it_writes() {
    for (tag, plan) in all_plans() {
        for g in &plan.groups {
            let written: Vec<usize> = g
                .stages
                .iter()
                .zip(&g.live_out)
                .filter(|(_, lo)| **lo)
                .filter_map(|(s, _)| plan.storage.array_of_stage[s.0])
                .collect();
            for s in &g.stages {
                for inp in &plan.graph.stage(*s).inputs {
                    let StageInput::Stage(p) = inp else { continue };
                    // reads from outside the group resolve to p's array
                    if g.stages.contains(p) {
                        continue;
                    }
                    if let Some(pa) = plan.storage.array_of_stage[p.0] {
                        assert!(
                            !written.contains(&pa),
                            "{tag}: group writes array {pa} while reading it (stage {})",
                            plan.graph.stage(*p).name
                        );
                    }
                }
            }
        }
    }
}

/// The pooled alloc/free schedule is well-formed: allocation strictly
/// before every use, free after the last reading group, nothing double
/// freed or used-after-free.
#[test]
fn pool_schedule_respects_uses() {
    for (tag, plan) in all_plans() {
        let n_arrays = plan.storage.arrays.len();
        let mut alloc_at = vec![None; n_arrays];
        let mut free_at = vec![None; n_arrays];
        for (gi, arrs) in plan.storage.alloc_before_group.iter().enumerate() {
            for &a in arrs {
                assert!(alloc_at[a].is_none(), "{tag}: array {a} allocated twice");
                alloc_at[a] = Some(gi);
            }
        }
        for (gi, arrs) in plan.storage.free_after_group.iter().enumerate() {
            for &a in arrs {
                assert!(free_at[a].is_none(), "{tag}: array {a} freed twice");
                free_at[a] = Some(gi);
            }
        }
        // every group access within [alloc, free]
        for (gi, g) in plan.groups.iter().enumerate() {
            let mut touched: Vec<usize> = Vec::new();
            for (i, s) in g.stages.iter().enumerate() {
                if g.live_out[i] {
                    touched.extend(plan.storage.array_of_stage[s.0]);
                }
                for inp in &plan.graph.stage(*s).inputs {
                    if let StageInput::Stage(p) = inp {
                        if !g.stages.contains(p) {
                            touched.extend(plan.storage.array_of_stage[p.0]);
                        }
                    }
                }
            }
            for a in touched {
                if plan.storage.arrays[a].external {
                    continue;
                }
                if let Some(al) = alloc_at[a] {
                    assert!(
                        al <= gi,
                        "{tag}: array {a} used in group {gi} before alloc {al}"
                    );
                }
                if let Some(fr) = free_at[a] {
                    assert!(
                        fr >= gi,
                        "{tag}: array {a} used in group {gi} after free {fr}"
                    );
                }
            }
        }
    }
}

/// opt+ never uses more storage than opt; both never more than naive.
#[test]
fn storage_monotone_across_variants() {
    for ndims in [2usize, 3] {
        let n = if ndims == 2 { 63 } else { 31 };
        let cfg = MgConfig::new(ndims, n, CycleType::W, SmoothSteps::s444());
        let pipeline = build_cycle_pipeline(&cfg);
        let bytes = |v: Variant| {
            let mut opts = PipelineOptions::for_variant(v, ndims);
            opts.tile_sizes = if ndims == 2 {
                vec![16, 32]
            } else {
                vec![8, 8, 16]
            };
            compile(&pipeline, &ParamBindings::new(), opts)
                .unwrap()
                .storage
                .intermediate_bytes()
        };
        let naive = bytes(Variant::Naive);
        let opt = bytes(Variant::Opt);
        let optp = bytes(Variant::OptPlus);
        assert!(optp <= opt, "{ndims}D: opt+ {optp} > opt {opt}");
        assert!(opt <= naive, "{ndims}D: opt {opt} > naive {naive}");
        assert!(
            optp * 3 < naive,
            "{ndims}D: expected a large storage reduction ({optp} vs {naive})"
        );
    }
}
