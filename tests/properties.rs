//! Property-based tests (proptest) over the core invariants listed in
//! DESIGN.md §7:
//!
//! * tile partitions cover each point exactly once, and owned regions
//!   partition every scaled live-out domain;
//! * backward region propagation covers the exact read footprint;
//! * the storage remapper never aliases two simultaneously-live items;
//! * the pool never hands out a buffer twice concurrently;
//! * the split/diamond schedule covers space-time exactly once with
//!   dependences satisfied;
//! * linearisation preserves expression semantics.

use proptest::prelude::*;

use polymg_repro::compiler::storage::{remap_storage, RemapItem, StorageClass};
use polymg_repro::ir::expr::Operand;
use polymg_repro::ir::linearize;
use polymg_repro::poly::diamond::split_time_tiling;
use polymg_repro::poly::region::{propagate_regions, GroupEdge, GroupStage};
use polymg_repro::poly::tiling::{owned_region, tile_partition};
use polymg_repro::poly::{AxisFootprint, BoxDomain, Footprint, Interval, Ratio};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tile_partition_exact_cover(
        n in 1i64..40,
        ty in 1i64..12,
        tx in 1i64..12,
    ) {
        let dom = BoxDomain::interior(2, n);
        let tiles = tile_partition(&dom, &[ty, tx]);
        let total: i64 = tiles.iter().map(BoxDomain::len).sum();
        prop_assert_eq!(total, n * n);
        // spot-check coverage of a few points
        for p in [[1, 1], [n, n], [(n + 1) / 2, 1]] {
            let c = tiles.iter().filter(|t| t.contains_point(&p)).count();
            prop_assert_eq!(c, 1);
        }
    }

    #[test]
    fn owned_regions_partition_scaled_domains(
        k in 2u32..6,
        t in 1i64..16,
        halvings in 0u32..3,
    ) {
        // fine interior 2^k − 1, coarse scaled by 2^halvings
        let nf = (1i64 << k) - 1;
        let nc = (1i64 << (k.saturating_sub(halvings))) - 1;
        prop_assume!(nc >= 1);
        let fine = BoxDomain::interior(1, nf);
        let coarse = BoxDomain::interior(1, nc);
        let scale = vec![Ratio::new(nc + 1, nf + 1)];
        let tiles = tile_partition(&fine, &[t]);
        let owned: Vec<BoxDomain> =
            tiles.iter().map(|tl| owned_region(tl, &scale, &coarse)).collect();
        for p in 1..=nc {
            let c = owned.iter().filter(|o| o.contains_point(&[p])).count();
            prop_assert_eq!(c, 1, "coarse point {} owned {} times", p, c);
        }
    }

    #[test]
    fn region_propagation_covers_footprints(
        n in 8i64..32,
        r1 in 0i64..3,
        r2 in 0i64..3,
        lo in 1i64..8,
        len in 1i64..8,
    ) {
        // chain 0 → 1 → 2 with radii r1, r2; owned box on stage 2
        let dom = BoxDomain::interior(2, n);
        let hi = (lo + len).min(n);
        let owned = BoxDomain::new(vec![Interval::new(lo, hi); 2]);
        let stages = vec![
            GroupStage { domain: dom.clone(), owned: BoxDomain::empty(2) },
            GroupStage { domain: dom.clone(), owned: BoxDomain::empty(2) },
            GroupStage { domain: dom.clone(), owned },
        ];
        let edges = vec![
            GroupEdge {
                producer: 0,
                consumer: 1,
                footprint: Footprint::uniform(2, AxisFootprint::stencil(r1)),
            },
            GroupEdge {
                producer: 1,
                consumer: 2,
                footprint: Footprint::uniform(2, AxisFootprint::stencil(r2)),
            },
        ];
        let regions = propagate_regions(&stages, &edges);
        // every read of every computed consumer point must be inside the
        // producer's alloc box (or the ghost dilation of its domain)
        for (edge, (cons, prod)) in [(0usize, (1usize, 0usize)), (1, (2, 1))] {
            let fp = &edges[edge].footprint;
            let c = &regions[cons].compute;
            if c.is_empty() { continue; }
            for d in 0..2 {
                let needed = fp.0[d].input_needed(&c.0[d]);
                prop_assert!(
                    regions[prod].alloc.0[d].contains_interval(&needed),
                    "dim {}: needed {} alloc {}",
                    d, needed, regions[prod].alloc.0[d]
                );
                // and computable part is inside domain
                prop_assert!(dom.0[d].contains_interval(&regions[prod].compute.0[d]));
            }
        }
    }

    #[test]
    fn storage_remap_never_aliases(
        lives in proptest::collection::vec((0i64..20, 1i64..6, 0usize..3), 1..40),
    ) {
        let items: Vec<RemapItem> = lives
            .iter()
            .map(|&(t, life, cls)| RemapItem {
                time: t,
                last_use: t + life,
                class: StorageClass {
                    ndims: 1,
                    size_key: vec![8 * (cls as i64 + 1)],
                    param_tag: None,
                },
            })
            .collect();
        let r = remap_storage(&items, true);
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                if r.buffer_of[i] != r.buffer_of[j] {
                    continue;
                }
                let (a, b) = (&items[i], &items[j]);
                prop_assert!(
                    a.time > b.last_use || b.time > a.last_use,
                    "items {} and {} alias while live", i, j
                );
                prop_assert_eq!(&a.class, &b.class);
            }
        }
        // reuse never produces more buffers than 1:1
        prop_assert!(r.num_buffers() <= items.len());
    }

    #[test]
    fn split_tiling_covers_space_time(
        n in 4i64..40,
        steps in 1usize..12,
        w in 2i64..20,
        h in 1usize..6,
    ) {
        let bands = split_time_tiling(n, steps, w, h, 1);
        let dom = Interval::new(1, n);
        let mut seen = vec![0u8; steps * n as usize];
        for band in &bands {
            for phase in [&band.phase1, &band.phase2] {
                for trap in phase {
                    for s in 0..band.steps {
                        let rows = trap.rows_at(s as i64, dom);
                        if rows.is_empty() { continue; }
                        for i in rows.lo..=rows.hi {
                            seen[(band.t0 + s) * n as usize + (i - 1) as usize] += 1;
                        }
                    }
                }
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "coverage counts: {:?}", seen);
    }

    #[test]
    fn linearize_preserves_semantics(
        c1 in -3.0f64..3.0,
        c2 in -3.0f64..3.0,
        bias in -2.0f64..2.0,
        o1 in -2i64..3,
        o2 in -2i64..3,
    ) {
        let s = |k: usize, offs: &[i64]| Operand::Slot(k).at(offs);
        let e = bias + c1 * s(0, &[o1, 0]) - (s(1, &[0, o2]) / 2.0) * c2
            + 0.5 * (s(0, &[o1, 0]) - s(0, &[0, 0]));
        let form = linearize(&e).unwrap();
        // evaluate both at a few points with a synthetic field
        let field = |slot: usize, idx: &[i64]| {
            (slot as f64 + 1.0) * (3.0 * idx[0] as f64 - idx[1] as f64 + 0.25)
        };
        for p in [[4i64, 5], [7, 2]] {
            let direct = e.eval_at(&p, &mut |op, idx| match op {
                Operand::Slot(k) => field(*k, idx),
                _ => unreachable!(),
            });
            let mut lin = form.bias;
            for t in &form.taps {
                let idx = t.access.eval(&p);
                lin += t.coeff * field(t.slot, &idx);
            }
            prop_assert!((direct - lin).abs() < 1e-9, "{} vs {}", direct, lin);
        }
    }

    #[test]
    fn interval_algebra(
        a_lo in -20i64..20, a_len in 0i64..20,
        b_lo in -20i64..20, b_len in 0i64..20,
    ) {
        let a = Interval::new(a_lo, a_lo + a_len);
        let b = Interval::new(b_lo, b_lo + b_len);
        let i = a.intersect(&b);
        let h = a.hull(&b);
        prop_assert!(h.contains_interval(&a) && h.contains_interval(&b));
        prop_assert!(a.contains_interval(&i) && b.contains_interval(&i));
        // point-wise consistency
        for p in (a_lo - 2)..(a_lo + a_len + 2) {
            prop_assert_eq!(i.contains(p), a.contains(p) && b.contains(p));
            prop_assert!(!(a.contains(p) || b.contains(p)) || h.contains(p));
        }
    }
}

// Pool safety under a random alloc/free trace (deterministic shrinking).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pool_never_hands_out_live_buffer(ops in proptest::collection::vec((0usize..4, 16usize..64), 1..60)) {
        use polymg_repro::runtime::BufferPool;
        let mut pool = BufferPool::new();
        let mut live: Vec<(usize, gmg_grid::Buffer)> = Vec::new();
        let mut next_tag = 0usize;
        for (op, len) in ops {
            if op == 0 && !live.is_empty() {
                // free the oldest
                let (_, buf) = live.remove(0);
                pool.deallocate(buf);
            } else {
                let mut buf = pool.allocate(len);
                // stamp the buffer and verify no live buffer shares storage
                let tag = next_tag as f64;
                next_tag += 1;
                buf.as_mut_slice()[0] = tag;
                for (t, other) in &live {
                    prop_assert!(
                        (other.as_slice()[0] - *t as f64).abs() < 0.5,
                        "live buffer {} was clobbered", t
                    );
                }
                live.push((next_tag - 1, buf));
            }
        }
        let stats = pool.stats();
        prop_assert!(stats.peak_live_bytes >= stats.live_bytes);
    }
}
