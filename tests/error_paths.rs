//! Failure-injection tests: malformed programs and mis-bound executions
//! must fail loudly with actionable diagnostics, never silently compute
//! garbage.

use polymg_repro::compiler::{compile, PipelineOptions, Variant};
use polymg_repro::ir::expr::{Access, AxisAccess, Operand};
use polymg_repro::ir::{ParamBindings, Parity, ParityPattern, Pipeline, StepCount};
use polymg_repro::runtime::{Engine, ExecError};

fn opts() -> PipelineOptions {
    PipelineOptions::for_variant(Variant::OptPlus, 2)
}

#[test]
fn out_of_bounds_stencil_is_a_compile_error() {
    let mut p = Pipeline::new("oob");
    let v = p.input("V", 2, 15, 0);
    // radius-2 read: needs ghost depth 2, only 1 is available
    let a = p.function("a", 2, 15, 0, Operand::Func(v).at(&[0, 2]));
    p.mark_output(a);
    let err = compile(&p, &ParamBindings::new(), opts()).unwrap_err();
    assert!(
        err.iter().any(|e| e.contains("reads of 'V'")),
        "diagnostics: {err:?}"
    );
}

#[test]
fn incomplete_parity_cases_are_a_compile_error() {
    let mut p = Pipeline::new("gap");
    let v = p.input("V", 2, 15, 0);
    let cases = vec![(
        ParityPattern(vec![Parity::Even, Parity::Any]),
        Operand::Func(v).at(&[0, 0]),
    )];
    let a = p.function_cases("a", 2, 15, 0, cases);
    p.mark_output(a);
    let err = compile(&p, &ParamBindings::new(), opts()).unwrap_err();
    assert!(err.iter().any(|e| e.contains("no case covers")), "{err:?}");
}

#[test]
fn ambiguous_upsampling_is_a_compile_error() {
    let mut p = Pipeline::new("amb");
    let v = p.input("V", 2, 7, 0);
    // /2 access without a parity-pinned case: which coarse point?
    let a = p.function(
        "a",
        2,
        14,
        0,
        Operand::Func(v).read(Access(vec![AxisAccess::up(0), AxisAccess::up(0)])),
    );
    p.mark_output(a);
    let err = compile(&p, &ParamBindings::new(), opts()).unwrap_err();
    assert!(err.iter().any(|e| e.contains("parity-pinned")), "{err:?}");
}

#[test]
#[should_panic(expected = "unbound")]
fn unbound_step_parameter_panics_at_unroll() {
    let mut p = Pipeline::new("unb");
    let t = p.parameter("T");
    let v = p.input("V", 2, 15, 0);
    let sm = p.tstencil(
        "sm",
        2,
        15,
        0,
        StepCount::Param(t),
        Some(v),
        Operand::State.at(&[0, 0]) * 0.5,
    );
    p.mark_output(sm);
    let _ = compile(&p, &ParamBindings::new(), opts());
}

#[test]
fn missing_input_binding_is_a_typed_run_error() {
    let mut p = Pipeline::new("miss");
    let v = p.input("V", 2, 15, 0);
    let a = p.function("a", 2, 15, 0, Operand::Func(v).at(&[0, 0]) * 2.0);
    p.mark_output(a);
    let plan = compile(&p, &ParamBindings::new(), opts()).unwrap();
    let mut engine = Engine::new(plan);
    let mut out = vec![0.0; 17 * 17];
    let err = engine.run(&[], vec![("a", &mut out)]).unwrap_err(); // V never bound
    match &err {
        ExecError::NotBound { name } => assert_eq!(name, "V"),
        other => panic!("expected NotBound, got {other:?}"),
    }
    assert!(err.to_string().contains("not bound"), "{err}");
}

#[test]
fn missized_input_is_a_typed_run_error() {
    let mut p = Pipeline::new("size");
    let v = p.input("V", 2, 15, 0);
    let a = p.function("a", 2, 15, 0, Operand::Func(v).at(&[0, 0]) * 2.0);
    p.mark_output(a);
    let plan = compile(&p, &ParamBindings::new(), opts()).unwrap();
    let mut engine = Engine::new(plan);
    let vin = vec![0.0; 10]; // must be 17*17
    let mut out = vec![0.0; 17 * 17];
    let err = engine
        .run(&[("V", &vin)], vec![("a", &mut out)])
        .unwrap_err();
    match &err {
        ExecError::WrongSize {
            name,
            expected,
            got,
        } => {
            assert_eq!(name, "V");
            assert_eq!(*expected, 17 * 17);
            assert_eq!(*got, 10);
        }
        other => panic!("expected WrongSize, got {other:?}"),
    }
    assert!(err.to_string().contains("wrong size"), "{err}");
}

#[test]
#[should_panic(expected = "feed-forward")]
fn forward_reference_panics_at_build() {
    use polymg_repro::ir::FuncId;
    let mut p = Pipeline::new("fwd");
    let _ = p.function("a", 2, 15, 0, Operand::Func(FuncId(7)).at(&[0, 0]));
}

#[test]
#[should_panic(expected = "duplicate function name")]
fn duplicate_names_panic_at_build() {
    let mut p = Pipeline::new("dup");
    p.input("V", 2, 15, 0);
    p.input("V", 2, 15, 0);
}

#[test]
fn nonlinear_pipelines_still_execute_via_interpreter() {
    // not an error path per se: nonlinear definitions must degrade
    // gracefully to the interpreter and still match it under optimization
    let mut p = Pipeline::new("nl");
    let v = p.input("V", 2, 15, 0);
    let sq = p.function(
        "sq",
        2,
        15,
        0,
        Operand::Func(v).at(&[0, 0]) * Operand::Func(v).at(&[0, -1]) + 1.0,
    );
    p.mark_output(sq);
    let plan = compile(&p, &ParamBindings::new(), opts()).unwrap();
    assert!(!plan.kernels[1].as_ref().unwrap().fully_linear());
    let graph = plan.graph.clone();
    let mut engine = Engine::new(plan);
    let e = 17usize;
    let mut vin = vec![0.0; e * e];
    for (i, x) in vin.iter_mut().enumerate() {
        *x = ((i % 5) as f64) - 2.0;
    }
    // ghost ring to zero
    for k in 0..e {
        for (a, b) in [(0, k), (e - 1, k), (k, 0), (k, e - 1)] {
            vin[a * e + b] = 0.0;
        }
    }
    let mut got = vec![0.0; e * e];
    engine.run(&[("V", &vin)], vec![("sq", &mut got)]).unwrap();
    let reference = polymg_repro::runtime::interp::run_reference(&graph, &[("V", &vin)]);
    for (a, b) in got.iter().zip(&reference["sq"]) {
        assert!((a - b).abs() < 1e-13);
    }
}
