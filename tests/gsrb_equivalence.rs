//! GSRB extension end-to-end: the DSL's parity-`Case` red-black smoother
//! must match the hand-written in-place half-sweeps across optimizer
//! variants, and must smooth better than Jacobi.

use polymg_repro::compiler::{PipelineOptions, Variant};
use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
use polymg_repro::mg::handopt::HandOpt;
use polymg_repro::mg::solver::{run_cycles, setup_poisson, CycleRunner, DslRunner};

fn gsrb_cfg(ndims: usize, n: i64) -> MgConfig {
    MgConfig::new(
        ndims,
        n,
        CycleType::V,
        SmoothSteps {
            pre: 2,
            coarse: 2,
            post: 2,
        },
    )
    .with_gsrb()
}

#[test]
fn dsl_gsrb_matches_handopt_2d() {
    let cfg = gsrb_cfg(2, 63);
    let (v0, f, _) = setup_poisson(&cfg);
    let mut hand = HandOpt::new(cfg.clone());
    let mut vh = v0.clone();
    hand.cycle(&mut vh, &f);
    hand.cycle(&mut vh, &f);

    for variant in [Variant::Naive, Variant::Opt, Variant::OptPlus] {
        let mut opts = PipelineOptions::for_variant(variant, 2);
        opts.tile_sizes = vec![16, 32];
        let mut dsl = DslRunner::new(&cfg, opts, variant.label()).unwrap();
        let mut vd = v0.clone();
        dsl.cycle(&mut vd, &f);
        dsl.cycle(&mut vd, &f);
        let dev = vd
            .iter()
            .zip(&vh)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(dev < 1e-11, "{}: deviation {dev}", variant.label());
    }
}

#[test]
fn dsl_gsrb_matches_handopt_3d() {
    let cfg = gsrb_cfg(3, 31);
    let (v0, f, _) = setup_poisson(&cfg);
    let mut hand = HandOpt::new(cfg.clone());
    let mut vh = v0.clone();
    hand.cycle(&mut vh, &f);

    let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 3);
    opts.tile_sizes = vec![8, 8, 16];
    let mut dsl = DslRunner::new(&cfg, opts, "polymg-opt+").unwrap();
    let mut vd = v0;
    dsl.cycle(&mut vd, &f);
    let dev = vd
        .iter()
        .zip(&vh)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(dev < 1e-11, "deviation {dev}");
}

#[test]
fn gsrb_cycle_converges_strongly() {
    let mut cfg = gsrb_cfg(2, 63);
    cfg.steps.coarse = 40;
    let mut opts = PipelineOptions::for_variant(Variant::OptPlus, 2);
    opts.tile_sizes = vec![16, 32];
    let mut dsl = DslRunner::new(&cfg, opts, "polymg-opt+").unwrap();
    let (mut v, f, _) = setup_poisson(&cfg);
    let r = run_cycles(&mut dsl, &cfg, &mut v, &f, 5);
    assert!(
        r.conv_factor() < 0.15,
        "GSRB V(2,2) should converge fast, got {}",
        r.conv_factor()
    );
}
