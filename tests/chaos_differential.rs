//! Chaos differential suite (DESIGN.md §12): random multigrid pipelines ×
//! random fault plans. The invariant is three-sided:
//!
//! * a run whose injected faults were all *recovered* (pool/arena
//!   exhaustion, halo retries) is bitwise-identical to the fault-free run;
//! * an *unrecoverable* fault (op fault, worker panic) surfaces as a typed
//!   [`ExecError`] — never a panic, never a deadlock — and the same engine
//!   keeps working for subsequent cycles;
//! * chaos never changes what is compiled: the fault-free and chaos
//!   runners share one cached plan (chaos is excluded from the plan
//!   fingerprint), so any divergence is an execution bug, not a plan diff.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use polymg_repro::compiler::chaos::SITE_ALL;
use polymg_repro::compiler::{ChaosOptions, PipelineOptions, Scenario, Variant};
use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
use polymg_repro::mg::scenario::{coeff_field, scenario_runner, ScenarioSpec};
use polymg_repro::mg::solver::{setup_poisson, DslRunner};

const CYCLES: usize = 2;

fn config(ndims: usize, cycle: CycleType) -> MgConfig {
    let n = if ndims == 2 { 31 } else { 15 };
    let steps = SmoothSteps {
        pre: 2,
        coarse: 2,
        post: 2,
    };
    let mut cfg = MgConfig::new(ndims, n, cycle, steps);
    cfg.levels = 3;
    cfg
}

fn options(variant: Variant, ndims: usize, specialize: bool) -> PipelineOptions {
    let mut opts = PipelineOptions::for_variant(variant, ndims);
    opts.tile_sizes = if ndims == 2 {
        vec![8, 16]
    } else {
        vec![4, 4, 8]
    };
    opts.threads = 2;
    opts.specialize = specialize;
    opts
}

/// Build the runner for a scenario pipeline (DESIGN.md §18): the constant
/// cycle, the variable-coefficient operator (with the canonical smooth
/// field bound), or the RB-GS/Chebyshev smoother substitutions — chaos
/// must hold the same recovered-means-bitwise contract on all of them.
fn scenario_dsl_runner(
    cfg: &MgConfig,
    opts: PipelineOptions,
    scenario: Scenario,
    label: &str,
) -> DslRunner {
    let coeff = scenario.needs_coeff().then(|| coeff_field(cfg));
    scenario_runner(cfg, ScenarioSpec::new(scenario), opts, label, coeff)
        .unwrap_or_else(|e| panic!("{label} compile failed: {e}"))
}

/// Fault-free reference trajectory.
fn reference(cfg: &MgConfig, opts: PipelineOptions, scenario: Scenario) -> Vec<f64> {
    let (mut v, f, _) = setup_poisson(cfg);
    let mut runner = scenario_dsl_runner(cfg, opts, scenario, "ref");
    for _ in 0..CYCLES {
        runner
            .cycle_with_stats(&mut v, &f)
            .expect("fault-free cycle");
    }
    v
}

/// Drive `CYCLES` cycles under an armed fault plan. Typed errors are
/// tolerated (and the engine is re-driven afterwards — it must stay
/// usable); a panic escaping `Engine::run` fails the property.
/// Returns `(final_v, every_cycle_ok)` or the panic payload.
fn chaos_run(
    cfg: &MgConfig,
    opts: PipelineOptions,
    scenario: Scenario,
) -> Result<(Vec<f64>, bool), String> {
    let (mut v, f, _) = setup_poisson(cfg);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut runner = scenario_dsl_runner(cfg, opts, scenario, "chaos");
        let mut all_ok = true;
        for _ in 0..CYCLES {
            if runner.cycle_with_stats(&mut v, &f).is_err() {
                all_ok = false;
            }
        }
        all_ok
    }));
    match outcome {
        Ok(all_ok) => Ok((v, all_ok)),
        Err(p) => Err(p
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into())),
    }
}

#[allow(clippy::too_many_arguments)]
fn check_case(
    ndims: usize,
    cycle: CycleType,
    variant: Variant,
    specialize: bool,
    scenario: Scenario,
    seed: u64,
    rate: f64,
    sites: u8,
) -> Result<(), String> {
    let cfg = config(ndims, cycle);
    let clean = reference(&cfg, options(variant, ndims, specialize), scenario);

    let mut opts = options(variant, ndims, specialize);
    opts.chaos = Some(ChaosOptions::new(seed, rate).with_sites(sites & SITE_ALL));
    let (v, all_ok) = chaos_run(&cfg, opts, scenario)
        .map_err(|p| format!("panic escaped Engine::run under chaos: {p}"))?;
    if all_ok && v != clean {
        return Err(format!(
            "every fault was recovered (all cycles Ok) but the result diverged \
             from the fault-free run ({} {:?} {:?} {scenario:?} seed={seed} \
             rate={rate} sites={sites:#07b})",
            cfg.tag(),
            variant,
            specialize,
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random pipeline × random scenario × random fault plan: bitwise
    /// after recovery, or a typed error — never a panic.
    #[test]
    fn chaos_is_bitwise_recoverable_or_typed(
        ndims_sel in 0u8..2,
        cycle_sel in 0u8..2,
        variant_sel in 0u8..2,
        spec_sel in 0u8..2,
        scenario_sel in 0u8..4,
        seed in 0u64..1_000_000_000,
        rate in 0.0f64..0.5,
        sites in 1u8..=SITE_ALL,
    ) {
        let ndims = if ndims_sel == 0 { 2 } else { 3 };
        let cycle = if cycle_sel == 0 { CycleType::V } else { CycleType::W };
        let variant = if variant_sel == 0 { Variant::OptPlus } else { Variant::DtileOptPlus };
        let specialize = spec_sel == 1;
        // Fmg shares the constant per-cycle pipeline, so the interesting
        // chaos surfaces are the other scenario operators/smoothers.
        let scenario = [Scenario::Constant, Scenario::VarCoef, Scenario::Rbgs, Scenario::Chebyshev]
            [scenario_sel as usize];
        if let Err(msg) = check_case(ndims, cycle, variant, specialize, scenario, seed, rate, sites) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// Deterministic CI gate (`ci.sh` runs this suite): three fixed seeds over
/// a fixed config with every site armed at a fault-heavy rate.
#[test]
fn fixed_seeds_gate() {
    for seed in [1u64, 2, 3] {
        for &(ndims, variant, scenario) in &[
            (2, Variant::OptPlus, Scenario::Constant),
            (3, Variant::DtileOptPlus, Scenario::Constant),
            (2, Variant::OptPlus, Scenario::VarCoef),
            (2, Variant::OptPlus, Scenario::Rbgs),
        ] {
            check_case(ndims, CycleType::V, variant, true, scenario, seed, 0.2, SITE_ALL)
                .unwrap_or_else(|msg| panic!("seed {seed}: {msg}"));
        }
    }
}
