//! Chaos differential suite (DESIGN.md §12): random multigrid pipelines ×
//! random fault plans. The invariant is three-sided:
//!
//! * a run whose injected faults were all *recovered* (pool/arena
//!   exhaustion, halo retries) is bitwise-identical to the fault-free run;
//! * an *unrecoverable* fault (op fault, worker panic) surfaces as a typed
//!   [`ExecError`] — never a panic, never a deadlock — and the same engine
//!   keeps working for subsequent cycles;
//! * chaos never changes what is compiled: the fault-free and chaos
//!   runners share one cached plan (chaos is excluded from the plan
//!   fingerprint), so any divergence is an execution bug, not a plan diff.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use polymg_repro::compiler::chaos::SITE_ALL;
use polymg_repro::compiler::{ChaosOptions, PipelineOptions, Variant};
use polymg_repro::mg::config::{CycleType, MgConfig, SmoothSteps};
use polymg_repro::mg::solver::{setup_poisson, DslRunner};

const CYCLES: usize = 2;

fn config(ndims: usize, cycle: CycleType) -> MgConfig {
    let n = if ndims == 2 { 31 } else { 15 };
    let steps = SmoothSteps {
        pre: 2,
        coarse: 2,
        post: 2,
    };
    let mut cfg = MgConfig::new(ndims, n, cycle, steps);
    cfg.levels = 3;
    cfg
}

fn options(variant: Variant, ndims: usize, specialize: bool) -> PipelineOptions {
    let mut opts = PipelineOptions::for_variant(variant, ndims);
    opts.tile_sizes = if ndims == 2 {
        vec![8, 16]
    } else {
        vec![4, 4, 8]
    };
    opts.threads = 2;
    opts.specialize = specialize;
    opts
}

/// Fault-free reference trajectory.
fn reference(cfg: &MgConfig, opts: PipelineOptions) -> Vec<f64> {
    let (mut v, f, _) = setup_poisson(cfg);
    let mut runner = DslRunner::new(cfg, opts, "ref").expect("reference compile");
    for _ in 0..CYCLES {
        runner
            .cycle_with_stats(&mut v, &f)
            .expect("fault-free cycle");
    }
    v
}

/// Drive `CYCLES` cycles under an armed fault plan. Typed errors are
/// tolerated (and the engine is re-driven afterwards — it must stay
/// usable); a panic escaping `Engine::run` fails the property.
/// Returns `(final_v, every_cycle_ok)` or the panic payload.
fn chaos_run(cfg: &MgConfig, opts: PipelineOptions) -> Result<(Vec<f64>, bool), String> {
    let (mut v, f, _) = setup_poisson(cfg);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut runner = DslRunner::new(cfg, opts, "chaos").expect("chaos compile");
        let mut all_ok = true;
        for _ in 0..CYCLES {
            if runner.cycle_with_stats(&mut v, &f).is_err() {
                all_ok = false;
            }
        }
        all_ok
    }));
    match outcome {
        Ok(all_ok) => Ok((v, all_ok)),
        Err(p) => Err(p
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".into())),
    }
}

fn check_case(
    ndims: usize,
    cycle: CycleType,
    variant: Variant,
    specialize: bool,
    seed: u64,
    rate: f64,
    sites: u8,
) -> Result<(), String> {
    let cfg = config(ndims, cycle);
    let clean = reference(&cfg, options(variant, ndims, specialize));

    let mut opts = options(variant, ndims, specialize);
    opts.chaos = Some(ChaosOptions::new(seed, rate).with_sites(sites & SITE_ALL));
    let (v, all_ok) =
        chaos_run(&cfg, opts).map_err(|p| format!("panic escaped Engine::run under chaos: {p}"))?;
    if all_ok && v != clean {
        return Err(format!(
            "every fault was recovered (all cycles Ok) but the result diverged \
             from the fault-free run ({} {:?} {:?} seed={seed} rate={rate} sites={sites:#07b})",
            cfg.tag(),
            variant,
            specialize,
        ));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random pipeline × random fault plan: bitwise after recovery, or a
    /// typed error — never a panic.
    #[test]
    fn chaos_is_bitwise_recoverable_or_typed(
        ndims_sel in 0u8..2,
        cycle_sel in 0u8..2,
        variant_sel in 0u8..2,
        spec_sel in 0u8..2,
        seed in 0u64..1_000_000_000,
        rate in 0.0f64..0.5,
        sites in 1u8..=SITE_ALL,
    ) {
        let ndims = if ndims_sel == 0 { 2 } else { 3 };
        let cycle = if cycle_sel == 0 { CycleType::V } else { CycleType::W };
        let variant = if variant_sel == 0 { Variant::OptPlus } else { Variant::DtileOptPlus };
        let specialize = spec_sel == 1;
        if let Err(msg) = check_case(ndims, cycle, variant, specialize, seed, rate, sites) {
            prop_assert!(false, "{}", msg);
        }
    }
}

/// Deterministic CI gate (`ci.sh` runs this suite): three fixed seeds over
/// a fixed config with every site armed at a fault-heavy rate.
#[test]
fn fixed_seeds_gate() {
    for seed in [1u64, 2, 3] {
        for &(ndims, variant) in &[(2, Variant::OptPlus), (3, Variant::DtileOptPlus)] {
            check_case(ndims, CycleType::V, variant, true, seed, 0.2, SITE_ALL)
                .unwrap_or_else(|msg| panic!("seed {seed}: {msg}"));
        }
    }
}
